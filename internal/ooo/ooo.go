// Package ooo is the out-of-order timing simulator: a SimpleScalar
// sim-outorder-style pipeline (fetch, decode/rename/dispatch, issue,
// writeback, commit) extended with MIPS R10000-style register renaming over
// an explicit physical register file and the paper's DVI hardware: LVM and
// LVM-Stack driven save/restore elimination at dispatch, and early physical
// register reclamation at kill commit.
//
// Architectural semantics come from an embedded functional emulator stepped
// once per dispatched correct-path instruction. Misprediction is detected
// at dispatch (the emulator knows the outcome) but recovery waits until the
// branch resolves at writeback; in between, fetch streams real wrong-path
// instructions from the static image, which consume fetch and decode
// bandwidth, window slots, physical registers, functional units and cache
// ports before being squashed.
//
// # Scheduling
//
// Two interchangeable schedulers drive issue and writeback; both produce
// bit-identical Stats on every program and configuration (Config.Scheduler
// selects one; the differential tests in sched_test.go pin the
// equivalence).
//
// SchedPolled is the textbook implementation: every cycle it rescans the
// whole window for issuable and completing instructions and walks older
// entries to detect store-to-load conflicts — O(window) host work per
// simulated cycle no matter how little happens.
//
// SchedEventDriven (the default) restructures the same semantics around
// events, so each cycle touches only the instructions something happened
// to:
//
//   - Completion wheel: instructions entering execution are dropped into a
//     calendar queue keyed by their finish cycle; writeback pops exactly
//     the instructions finishing now (sorted by age, so predictor training
//     and recovery order match the polled scan) instead of scanning the
//     window. Latencies beyond the wheel horizon park in their slot and
//     are revisited one wheel turn later.
//   - Wakeup lists: at dispatch an instruction counts its not-yet-ready
//     sources and registers a watcher on each with the rename table
//     (rename.Watch); when a result is produced, writeback drains the
//     register's watchers (rename.TakeWatchers) and decrements their
//     counts. An instruction is examined for issue only when its last
//     outstanding source arrives, entering an age-ordered ready set (a
//     bitset over window slots walked oldest-first) that preserves
//     seniority arbitration for issue width, functional units and cache
//     ports.
//   - Last-store table: an 8-byte-granular hash of the youngest in-flight
//     store per block. A dispatching load records its conflicting store
//     (if any) once, making the per-issue conflict check O(1); in-order
//     commit guarantees that when that store leaves the window no older
//     matching store can remain.
//
// Misprediction recovery truncates the window, clears squashed ready bits
// and purges squashed watchers (rename.PurgeWatchers); wheel entries and
// last-store records are invalidated lazily by sequence-number checks.
// All event structures are rebuilt by Reset and reuse their storage, so a
// pooled machine's steady state allocates nothing per instruction.
package ooo

import (
	"fmt"
	"math/bits"

	"dvi/internal/bpred"
	"dvi/internal/cache"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/obs"
	"dvi/internal/prog"
	"dvi/internal/rename"
)

type state uint8

const (
	stDispatched state = iota
	stIssued
	stDone
)

type robEntry struct {
	valid     bool
	seq       uint64
	pc        uint64
	inst      isa.Inst
	class     isa.Class // predecoded pipeline class (prog.Meta)
	lat       uint8     // predecoded fixed latency (prog.Meta)
	wrongPath bool
	st        state
	doneCycle uint64

	// Pipeline trace stamps (cheap unconditional stores; the records they
	// feed are built only when Config.Trace is set).
	traceID       uint64 // fetch sequence number (fetchRec.traceID)
	fetchCycle    uint64
	dispatchCycle uint64
	issueCycle    uint64

	// Renaming.
	hasDest  bool
	destArch isa.Reg
	destPhys rename.PhysReg
	prevPhys rename.PhysReg // None if the arch reg was unmapped
	nSrc     int
	srcPhys  [2]rename.PhysReg

	// DVI reclamation: physical registers unmapped at this instruction's
	// decode (explicit kill or I-DVI), freed when it commits.
	killVictims []rename.PhysReg

	// Memory.
	isLoad, isStore bool
	addr            uint64

	// Control.
	isCtl       bool
	isCondBr    bool
	mispredict  bool
	actualNPC   uint64
	bpInfo      bpred.Info
	hasBpInfo   bool
	histAtFetch uint32
	rasSnap     bpred.RASSnapshot
	mapSnap     [rename.NumArch]rename.PhysReg // recovery checkpoint (mispredicts only)

	// Event-driven scheduler state (SchedEventDriven only).
	waits        uint8  // outstanding not-yet-ready sources
	hasConflict  bool   // a possibly conflicting older store was recorded
	conflictSlot int32  // window slot of that store
	conflictSeq  uint64 // its seq (validates the slot hasn't been recycled)
}

type fetchRec struct {
	pc          uint64
	inst        isa.Inst
	meta        *prog.Meta // predecoded metadata for inst (shared, read-only)
	faulted     bool       // pc was outside the text segment (synthetic HALT)
	traceID     uint64     // per-run fetch sequence number (trace identity)
	fetchCycle  uint64     // cycle this record entered the fetch queue
	predNPC     uint64
	isCtl       bool
	bpInfo      bpred.Info
	hasBpInfo   bool
	histAtFetch uint32
	rasSnap     bpred.RASSnapshot
}

// Machine is one simulated core executing one program.
type Machine struct {
	cfg Config
	img *prog.Image
	emu *emu.Emulator

	hier *cache.Hierarchy
	pred *bpred.Predictor
	btb  *bpred.BTB
	ras  *bpred.RAS
	rt   *rename.Table

	cycle uint64
	seq   uint64

	// Fetch state.
	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool // stopped at a wrong-path HALT; waiting for redirect
	ifq             []fetchRec
	ifqHead, ifqLen int

	// Window (circular).
	rob            []robEntry
	robHead        int // oldest
	robLen         int
	pendingMisp    bool // an unresolved correct-path mispredicted branch exists
	pendingMispSeq uint64

	// Per-cycle resource counters.
	aluUsed, mdUsed, portUsed, issued int

	dispatchHalted bool // correct-path HALT reached; drain and finish

	// Event-driven scheduler structures (see sched.go).
	es evSched

	// Pipeline tracing (trace.go). trace mirrors cfg.Trace; traceRec is
	// the reusable record passed to the sink so emitting does not
	// allocate; traceSeq numbers fetched instructions within the run.
	trace    obs.PipeSink
	traceSeq uint64
	traceRec obs.PipeRecord

	Stats Stats
}

// New builds a machine over its own copy of the program state.
func New(pr *prog.Program, img *prog.Image, cfg Config) *Machine {
	m := &Machine{}
	m.Reset(pr, img, cfg)
	return m
}

// Reset retargets the machine to a (possibly different) program, image
// and configuration and rewinds it to cycle zero. Allocations whose shape
// still fits the new configuration — the embedded emulator's memory
// pages, cache arrays, predictor tables, the window and fetch queue — are
// reused, so a pooled machine runs job after job without rebuilding its
// footprint. The reset machine is observably identical to a New one.
func (m *Machine) Reset(pr *prog.Program, img *prog.Image, cfg Config) {
	m.img = img
	if m.emu == nil {
		m.emu = emu.New(pr, img, cfg.Emu)
	} else {
		m.emu.ResetFor(pr, img, cfg.Emu)
	}
	if m.hier == nil || m.cfg.Hierarchy != cfg.Hierarchy {
		m.hier = cache.NewHierarchy(cfg.Hierarchy)
	} else {
		m.hier.Reset()
	}
	if m.pred == nil || m.cfg.Pred != cfg.Pred {
		m.pred = bpred.New(cfg.Pred)
		m.btb = bpred.NewBTB(cfg.Pred.BTBSets, cfg.Pred.BTBAssoc)
		m.ras = bpred.NewRAS(cfg.Pred.RASDepth)
	} else {
		m.pred.Reset()
		m.btb.Reset()
		m.ras.Reset()
	}
	if m.rt == nil || m.rt.NPhys() != cfg.PhysRegs {
		m.rt = rename.NewTable(cfg.PhysRegs)
	} else {
		m.rt.Reset()
	}
	if len(m.ifq) != cfg.IFQSize {
		m.ifq = make([]fetchRec, cfg.IFQSize)
	}
	if len(m.rob) != cfg.WindowSize {
		m.rob = make([]robEntry, cfg.WindowSize)
	}
	m.cfg = cfg
	m.es.reset(m)
	m.cycle, m.seq = 0, 0
	m.fetchPC = img.EntryPC
	m.fetchStallUntil = 0
	m.fetchHalted = false
	m.ifqHead, m.ifqLen = 0, 0
	m.robHead, m.robLen = 0, 0
	m.pendingMisp, m.pendingMispSeq = false, 0
	m.aluUsed, m.mdUsed, m.portUsed, m.issued = 0, 0, 0, 0
	m.dispatchHalted = false
	m.trace = cfg.Trace // always reassigned: a pooled machine must not keep a previous job's sink
	m.traceSeq = 0
	m.Stats = Stats{}
}

// Emu exposes the embedded emulator (checksum and architectural stats).
func (m *Machine) Emu() *emu.Emulator { return m.emu }

// Hierarchy exposes the cache hierarchy statistics.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Predictor exposes branch predictor statistics.
func (m *Machine) Predictor() *bpred.Predictor { return m.pred }

// robIdx maps the i-th oldest position (0 = head) to its slot in the
// circular buffer. head+i never exceeds twice the window, so the wrap is
// a compare instead of a division (this runs once per window entry per
// cycle under the polled scheduler).
func (m *Machine) robIdx(i int) int {
	idx := m.robHead + i
	if idx >= len(m.rob) {
		idx -= len(m.rob)
	}
	return idx
}

// robAt returns the i-th oldest entry (0 = head).
func (m *Machine) robAt(i int) *robEntry {
	return &m.rob[m.robIdx(i)]
}

// robOffset is robIdx's inverse: the age position of a slot (0 = oldest).
func (m *Machine) robOffset(slot int) int {
	off := slot - m.robHead
	if off < 0 {
		off += len(m.rob)
	}
	return off
}

// inWindow reports whether slot currently holds a live window entry.
func (m *Machine) inWindow(slot int) bool {
	return m.robOffset(slot) < m.robLen
}

// done reports whether simulation has finished.
func (m *Machine) done() bool {
	if m.cfg.MaxInsts != 0 && m.Stats.Committed >= m.cfg.MaxInsts {
		return true
	}
	return m.dispatchHalted && m.robLen == 0
}

// ErrDeadlock reports a wedged pipeline (an internal error, not a program
// property).
var ErrDeadlock = fmt.Errorf("ooo: pipeline deadlock")

// Run simulates until the program halts or the configured instruction
// budget is reached, and returns the final statistics.
func (m *Machine) Run() (Stats, error) {
	idleCycles := 0
	lastCommitted := uint64(0)
	for !m.done() {
		m.step()
		if m.Stats.Committed == lastCommitted {
			idleCycles++
			if idleCycles > 100000 {
				return m.Stats, fmt.Errorf("%w at cycle %d (pc %#x, rob %d, free %d)",
					ErrDeadlock, m.cycle, m.fetchPC, m.robLen, m.rt.FreeCount())
			}
		} else {
			idleCycles = 0
			lastCommitted = m.Stats.Committed
		}
	}
	if m.trace != nil {
		m.drainTrace()
	}
	m.Stats.Emu = m.emu.Stats
	return m.Stats, nil
}

// step advances one cycle. Stage order matches sim-outorder: results
// written back this cycle can issue dependents this cycle and commit runs
// first so freed resources are visible next cycle.
func (m *Machine) step() {
	m.cycle++
	m.Stats.Cycles++
	m.aluUsed, m.mdUsed, m.portUsed, m.issued = 0, 0, 0, 0

	m.commit()
	if m.cfg.Scheduler == SchedPolled {
		m.writebackPolled()
		m.issuePolled()
	} else {
		m.writebackEvent()
		m.issueEvent()
	}
	m.dispatch()
	m.fetch()

	if used := m.rt.InUse(); used > m.Stats.MaxPhysInUse {
		m.Stats.MaxPhysInUse = used
	}
}

// --- fetch ---

func (m *Machine) fetch() {
	if m.dispatchHalted || m.fetchHalted {
		return
	}
	if m.cycle < m.fetchStallUntil {
		return
	}
	if !m.cfg.WrongPathFetch && m.pendingMisp {
		return // ablation mode: stall fetch until the branch resolves
	}
	// One I-cache access per cycle at the group's start; the group runs to
	// the machine width or the first predicted-taken transfer
	// (sim-outorder's fetch model: no break at line boundaries, so small
	// code-layout shifts from inserted annotations do not perturb fetch).
	first := true
	for n := 0; n < m.cfg.IssueWidth && m.ifqLen < len(m.ifq); n++ {
		pc := m.fetchPC
		if first {
			lat := m.hier.L1I.Access(pc, false)
			if lat > m.cfg.Hierarchy.L1I.HitLatency {
				m.fetchStallUntil = m.cycle + uint64(lat)
				return
			}
			first = false
		}

		in, meta, inText := m.img.AtMeta(pc)
		if in.Op == isa.HALT && m.pendingMisp {
			// Wrong-path fetch ran off the program; wait for redirect.
			m.fetchHalted = true
			return
		}

		// Fill the fetch queue slot in place: the record embeds a RAS
		// snapshot, so building it in a local and copying it in would move
		// a few hundred bytes per fetched instruction. Checkpoint fields
		// (bpInfo, histAtFetch, rasSnap) are written only for control
		// instructions and only read behind isCtl/hasBpInfo, so stale
		// values in a reused slot are never observed.
		idx := m.ifqHead + m.ifqLen
		if idx >= len(m.ifq) {
			idx -= len(m.ifq)
		}
		rec := &m.ifq[idx]
		rec.pc, rec.inst, rec.meta, rec.faulted = pc, in, meta, !inText
		rec.traceID, rec.fetchCycle = m.traceSeq, m.cycle
		m.traceSeq++
		rec.predNPC = pc + isa.InstBytes
		rec.isCtl, rec.hasBpInfo = false, false
		taken := false
		switch meta.Class {
		case isa.ClassBranch:
			rec.isCtl = true
			rec.histAtFetch = m.pred.History()
			predTaken, info := m.pred.Predict(pc)
			rec.bpInfo, rec.hasBpInfo = info, true
			if predTaken {
				rec.predNPC = meta.Target
				taken = true
			}
			rec.rasSnap = m.ras.Snapshot()
		case isa.ClassJump:
			rec.isCtl = true
			rec.histAtFetch = m.pred.History()
			taken = true
			switch in.Op {
			case isa.J, isa.JAL:
				rec.predNPC = meta.Target
				if in.Op == isa.JAL {
					m.ras.Push(pc + isa.InstBytes)
				}
			case isa.JALR:
				m.ras.Push(pc + isa.InstBytes)
				if t, ok := m.btb.Lookup(pc); ok {
					rec.predNPC = t
				} else {
					taken = false // no prediction: fall through, will mispredict
				}
			case isa.JR:
				if in.IsReturn {
					if t, ok := m.ras.Pop(); ok {
						rec.predNPC = t
					} else {
						taken = false
					}
				} else if t, ok := m.btb.Lookup(pc); ok {
					rec.predNPC = t
				} else {
					taken = false
				}
			}
			rec.rasSnap = m.ras.Snapshot()
		}

		m.ifqLen++
		m.Stats.Fetched++
		m.fetchPC = rec.predNPC
		if taken {
			break // fetch group breaks on a predicted-taken transfer
		}
	}
}

// --- dispatch (decode + rename) ---

func (m *Machine) dispatch() {
	if m.dispatchHalted {
		return
	}
	for n := 0; n < m.cfg.IssueWidth && m.ifqLen > 0; n++ {
		if m.pendingMisp && !m.cfg.WrongPathFetch {
			// Ablation mode: no wrong-path execution at all. Whatever is
			// in the IFQ past the branch waits to be flushed at recovery.
			return
		}
		rec := &m.ifq[m.ifqHead]
		in := rec.inst

		// Save/restore elimination happens at decode and consumes no
		// window slot (paper §5: dead saves and restores "are not
		// dispatched"). Only meaningful on the correct path.
		if !m.pendingMisp {
			if in.Op == isa.LVST && m.cfg.Emu.Scheme != emu.ElimOff &&
				m.emu.Tracker.SaveEliminable(in.Rs2) {
				m.popIFQ()
				st := m.emu.Step()
				m.assertStep(rec, st, true)
				m.Stats.ElimSaves++
				m.Stats.Committed++
				if m.trace != nil {
					m.emitDecode(rec, obs.KindElimSave, obs.SquashNone, false, 0)
				}
				continue
			}
			if in.Op == isa.LVLD && m.cfg.Emu.Scheme == emu.ElimLVMStack &&
				m.emu.Tracker.RestoreEliminable(in.Rd) {
				m.popIFQ()
				st := m.emu.Step()
				m.assertStep(rec, st, true)
				m.Stats.ElimRests++
				m.Stats.Committed++
				if m.trace != nil {
					m.emitDecode(rec, obs.KindElimRestore, obs.SquashNone, false, 0)
				}
				continue
			}
		}

		// E-DVI kill annotations consume decode bandwidth but no window
		// slot, functional unit, or commit slot (paper §7: they are
		// effectively no-ops; the checkpoint mechanism tracks reclaimed
		// registers, "conserving space in the reorder buffer"). Their
		// victims ride on the youngest in-flight instruction and are
		// freed when it commits — at most one commit group before the
		// kill's own notional commit. Correct-path instructions are never
		// squashed in this simulator (misprediction is detected at
		// dispatch), so the early free is safe.
		if in.Op == isa.KILL {
			m.popIFQ()
			if m.pendingMisp {
				// Wrong-path kills have no lasting effect (see DESIGN.md).
				if m.trace != nil {
					m.emitDecode(rec, obs.KindKill, obs.SquashWrongPath, true, 0)
				}
				continue
			}
			st := m.emu.Step()
			m.assertStep(rec, st, false)
			m.Stats.KillsSeen++
			victims := uint8(0)
			for k := uint32(st.Killed); k != 0; k &= k - 1 {
				victim, ok := m.rt.Unmap(uint8(bits.TrailingZeros32(k)))
				if !ok {
					continue
				}
				victims++
				if m.robLen > 0 {
					y := m.robAt(m.robLen - 1)
					y.killVictims = append(y.killVictims, victim)
				} else {
					// Empty window: the kill is trivially
					// non-speculative; reclaim now.
					m.rt.Free(victim)
					m.Stats.EarlyReclaimed++
				}
			}
			if m.trace != nil {
				m.emitDecode(rec, obs.KindKill, obs.SquashNone, false, victims)
			}
			continue
		}

		// Window slot required for everything else.
		if m.robLen == len(m.rob) {
			m.Stats.WindowFullCycles++
			return
		}
		// Physical register required for destinations.
		if rec.meta.HasDest && m.rt.FreeCount() == 0 {
			m.Stats.RenameStallCycles++
			return
		}

		// Initialize the window entry field by field: a struct literal
		// would copy the embedded RAS/map checkpoints (a few hundred
		// bytes) on every dispatch. Checkpoint fields are written only
		// when needed and only read behind the flags set here.
		slot := m.robIdx(m.robLen)
		e := &m.rob[slot]
		e.valid = true
		e.seq = m.seq
		e.pc = rec.pc
		e.inst = in
		e.class = rec.meta.Class
		e.lat = rec.meta.Lat
		e.wrongPath = false
		e.st = stDispatched
		e.doneCycle = 0
		e.traceID = rec.traceID
		e.fetchCycle = rec.fetchCycle
		e.dispatchCycle = m.cycle
		e.issueCycle = 0
		e.hasDest = false
		e.destArch = 0
		e.destPhys = rename.None
		e.prevPhys = rename.None
		e.nSrc = 0
		e.killVictims = e.killVictims[:0] // reuse ring storage
		e.isLoad, e.isStore = false, false
		e.addr = 0
		e.isCtl = rec.isCtl
		e.isCondBr = rec.meta.Class == isa.ClassBranch
		e.mispredict = false
		e.actualNPC = 0
		e.hasBpInfo = rec.hasBpInfo
		if rec.isCtl {
			e.bpInfo = rec.bpInfo
			e.histAtFetch = rec.histAtFetch
			// rec.rasSnap is NOT copied here: it is only ever read when
			// recovering a mispredicted branch, which dispatchCorrect
			// detects below — copying the ~270-byte snapshot there, only
			// for actual mispredicts, keeps it off the per-control-
			// instruction fast path.
		}
		m.seq++

		if m.pendingMisp {
			m.dispatchWrongPath(e, rec)
		} else {
			if rec.pc != m.emu.PC {
				panic(fmt.Sprintf("ooo: correct-path fetch diverged: fetched %#x, emulator at %#x", rec.pc, m.emu.PC))
			}
			if in.Op == isa.HALT {
				if rec.faulted {
					// Synthetic HALT: correct-path control flow left the
					// text segment. Halt as before, but report it.
					m.Stats.Faults++
				}
				m.dispatchHalted = true
				m.popIFQ()
				e.valid = false
				return
			}
			m.dispatchCorrect(e, rec)
		}
		if m.cfg.Scheduler != SchedPolled {
			m.schedDispatch(e, slot)
		}

		m.popIFQ()
		m.robLen++
		m.Stats.Dispatched++
	}
}

func (m *Machine) popIFQ() {
	m.ifqHead++
	if m.ifqHead == len(m.ifq) {
		m.ifqHead = 0
	}
	m.ifqLen--
}

func (m *Machine) assertStep(rec *fetchRec, st emu.Step, wantElim bool) {
	if rec.pc != st.PC {
		panic(fmt.Sprintf("ooo: emulator desync: decode %#x vs step %#x", rec.pc, st.PC))
	}
	if st.Eliminated != wantElim {
		panic("ooo: dispatch elimination decision disagrees with emulator")
	}
}

// dispatchCorrect renames and functionally executes a correct-path
// instruction.
func (m *Machine) dispatchCorrect(e *robEntry, rec *fetchRec) {
	st := m.emu.Step()
	m.assertStep(rec, st, false)
	in := e.inst
	meta := rec.meta

	// Sources first (read old mappings), then kill victims, then the
	// destination: a kill mask plus destination write at a call (jal
	// writes ra, I-DVI kills temps) must see sources under pre-rename
	// mappings.
	for i := 0; i < int(meta.NSrc); i++ {
		r := meta.Srcs[i]
		if r == isa.Zero {
			continue
		}
		p, mapped := m.rt.Map(uint8(r))
		if mapped {
			e.srcPhys[e.nSrc] = p
			e.nSrc++
		}
	}

	// DVI: unmap registers that transitioned live->dead at this
	// instruction (explicit kill mask or I-DVI at call/return). Victims
	// are pinned in the entry and freed when it commits (paper §4.1:
	// reclamation only when non-speculative).
	for k := uint32(st.Killed); k != 0; k &= k - 1 {
		if victim, ok := m.rt.Unmap(uint8(bits.TrailingZeros32(k))); ok {
			e.killVictims = append(e.killVictims, victim)
		}
	}

	if meta.HasDest {
		newP, prevP, renamed := m.rt.Rename(uint8(meta.Dest))
		if !renamed {
			panic("ooo: rename failed after free-list check")
		}
		e.hasDest, e.destArch, e.destPhys, e.prevPhys = true, meta.Dest, newP, prevP
	}

	switch meta.Class {
	case isa.ClassLoad:
		e.isLoad, e.addr = true, st.Addr
	case isa.ClassStore:
		e.isStore, e.addr = true, st.Addr
	}

	e.actualNPC = st.NextPC
	if e.isCtl {
		if rec.predNPC != st.NextPC {
			// Misprediction detected at dispatch; recovery at writeback.
			e.mispredict = true
			e.rasSnap = rec.rasSnap
			e.mapSnap = m.rt.MapSnapshot()
			m.pendingMisp = true
			m.pendingMispSeq = e.seq
		}
	}

	// NOPs occupy a slot but no functional unit: done immediately.
	if in.Op == isa.NOP {
		e.st = stDone
		e.doneCycle = m.cycle
	}
}

// dispatchWrongPath renames a wrong-path instruction without functional
// execution. Its DVI decode effects are skipped (equivalent to perfect
// checkpoint recovery of the LVM structures, see DESIGN.md).
func (m *Machine) dispatchWrongPath(e *robEntry, rec *fetchRec) {
	m.Stats.WrongPath++
	e.wrongPath = true
	in := e.inst
	meta := rec.meta
	for i := 0; i < int(meta.NSrc); i++ {
		r := meta.Srcs[i]
		if r == isa.Zero {
			continue
		}
		if p, mapped := m.rt.Map(uint8(r)); mapped {
			e.srcPhys[e.nSrc] = p
			e.nSrc++
		}
	}
	if meta.HasDest {
		newP, prevP, renamed := m.rt.Rename(uint8(meta.Dest))
		if !renamed {
			panic("ooo: rename failed after free-list check")
		}
		e.hasDest, e.destArch, e.destPhys, e.prevPhys = true, meta.Dest, newP, prevP
	}
	switch meta.Class {
	case isa.ClassLoad:
		e.isLoad = true // no address: charged a port and hit latency only
	case isa.ClassStore:
		e.isStore = true
	}
	if in.Op == isa.NOP || in.Op == isa.HALT {
		e.st = stDone
		e.doneCycle = m.cycle
	}
}

// --- issue (polled scheduler; see sched.go for the event-driven one) ---

func (m *Machine) srcsReady(e *robEntry) bool {
	for i := 0; i < e.nSrc; i++ {
		if !m.rt.Ready(e.srcPhys[i]) {
			return false
		}
	}
	return true
}

// olderStoreConflict scans entries older than index i for stores whose
// (8-byte aligned) address overlaps addr. It returns the youngest match.
func (m *Machine) olderStoreConflict(i int, addr uint64) (conflict, dataReady bool) {
	a := addr &^ 7
	for j := i - 1; j >= 0; j-- {
		o := m.robAt(j)
		if !o.isStore {
			continue
		}
		if o.addr&^7 == a {
			return true, m.srcsReady(o)
		}
	}
	return false, false
}

func (m *Machine) issuePolled() {
	for i := 0; i < m.robLen && m.issued < m.cfg.IssueWidth; i++ {
		e := m.robAt(i)
		if e.st != stDispatched || !m.srcsReady(e) {
			continue
		}
		cls := e.class
		switch cls {
		case isa.ClassStore:
			// Stores complete when operands are ready (the cache access
			// happens at commit, sim-outorder behaviour) but still consume
			// an issue slot for address generation.
			m.issued++
			e.st = stDone
			e.issueCycle = m.cycle
			e.doneCycle = m.cycle
			continue
		case isa.ClassLoad:
			if e.wrongPath {
				if m.portUsed >= m.cfg.CachePorts {
					continue
				}
				m.portUsed++
				m.issued++
				m.Stats.WrongPathLoads++
				e.st = stIssued
				e.issueCycle = m.cycle
				e.doneCycle = m.cycle + uint64(m.cfg.Hierarchy.L1D.HitLatency)
				continue
			}
			conflict, dataReady := m.olderStoreConflict(i, e.addr)
			if conflict {
				if !dataReady {
					continue // wait for the producing store's data
				}
				// Store-to-load forwarding: one cycle, no cache port.
				m.issued++
				m.Stats.LoadForwarded++
				e.st = stIssued
				e.issueCycle = m.cycle
				e.doneCycle = m.cycle + 1
				continue
			}
			if m.portUsed >= m.cfg.CachePorts {
				continue
			}
			m.portUsed++
			m.issued++
			m.Stats.LoadsIssued++
			lat := m.hier.L1D.Access(e.addr, false)
			e.st = stIssued
			e.issueCycle = m.cycle
			e.doneCycle = m.cycle + uint64(lat)
			continue
		case isa.ClassIntMul, isa.ClassIntDiv:
			if m.mdUsed >= m.cfg.IntMulDiv {
				continue
			}
			m.mdUsed++
			m.issued++
			e.st = stIssued
			e.issueCycle = m.cycle
			if cls == isa.ClassIntMul {
				e.doneCycle = m.cycle + uint64(m.cfg.MulLatency)
			} else {
				e.doneCycle = m.cycle + uint64(m.cfg.DivLatency)
			}
			continue
		default: // ALU, branches, jumps
			if m.aluUsed >= m.cfg.IntALUs {
				continue
			}
			m.aluUsed++
			m.issued++
			e.st = stIssued
			e.issueCycle = m.cycle
			e.doneCycle = m.cycle + uint64(e.lat)
		}
	}
}

// --- writeback (polled scheduler) ---

func (m *Machine) writebackPolled() {
	for i := 0; i < m.robLen; i++ {
		e := m.robAt(i)
		if e.st != stIssued || e.doneCycle > m.cycle {
			continue
		}
		e.st = stDone
		if e.hasDest {
			m.rt.SetReady(e.destPhys)
		}
		if e.isCtl && !e.wrongPath {
			m.resolveControl(e, i)
			if e.mispredict {
				return // recovery flushed younger entries; stop scanning
			}
		}
	}
}

// resolveControl trains the predictor structures and performs misprediction
// recovery for a resolved correct-path control instruction.
func (m *Machine) resolveControl(e *robEntry, idx int) {
	if e.hasBpInfo {
		taken := e.actualNPC != e.pc+isa.InstBytes
		m.pred.Resolve(e.pc, taken, e.bpInfo)
	}
	if e.inst.Op == isa.JALR || (e.inst.Op == isa.JR && !e.inst.IsReturn) {
		m.btb.Update(e.pc, e.actualNPC)
	}
	if !e.mispredict {
		return
	}
	if !m.pendingMisp || e.seq != m.pendingMispSeq {
		panic("ooo: recovering a branch that is not the pending misprediction")
	}

	m.Stats.Mispredicts++
	m.Stats.Recoveries++

	// Squash everything younger than the branch.
	oldLen := m.robLen
	m.robLen = idx + 1
	if m.trace != nil {
		// Squashed entries stay intact in their slots until reuse; record
		// them before the scheduler forgets about them.
		for i := m.robLen; i < oldLen; i++ {
			m.emitRob(m.robAt(i), obs.SquashRecovery)
		}
	}
	if m.cfg.Scheduler != SchedPolled {
		m.schedSquash(oldLen)
	}

	// Restore the rename map and rebuild the free list from surviving
	// in-flight state.
	m.rt.RestoreMap(e.mapSnap)
	var used rename.Bits
	for i := 0; i < m.robLen; i++ {
		o := m.robAt(i)
		if o.hasDest {
			used.Set(o.destPhys)
			if o.prevPhys != rename.None {
				used.Set(o.prevPhys)
			}
		}
		for _, v := range o.killVictims {
			used.Set(v)
		}
	}
	m.rt.RebuildFree(&used)

	// Restore fetch structures to the state just after this instruction.
	m.ras.Restore(e.rasSnap)
	if e.isCondBr {
		m.pred.RestoreHistory(e.bpInfo.Hist, e.actualNPC != e.pc+isa.InstBytes)
	} else {
		// Target mispredict of an unconditional transfer: it never shifted
		// history, so reinstate the fetch-time value as-is.
		m.pred.SetHistory(e.histAtFetch)
	}

	// Redirect fetch. Everything still in the fetch queue was fetched on
	// the mispredicted path and is flushed without dispatching.
	if m.trace != nil {
		for i := 0; i < m.ifqLen; i++ {
			m.emitDecode(m.ifqAt(i), obs.KindInst, obs.SquashFetch, true, 0)
		}
	}
	m.ifqHead, m.ifqLen = 0, 0
	m.fetchPC = e.actualNPC
	m.fetchHalted = false
	m.fetchStallUntil = 0
	m.pendingMisp = false
}

// --- commit ---

func (m *Machine) commit() {
	for n := 0; n < m.cfg.IssueWidth && m.robLen > 0; n++ {
		e := m.robAt(0)
		if e.st != stDone {
			return
		}
		if e.wrongPath {
			panic(fmt.Sprintf("ooo: wrong-path instruction at commit: %v @%#x", e.inst, e.pc))
		}
		if e.isStore {
			if m.portUsed >= m.cfg.CachePorts {
				m.Stats.PortStallCycles++
				return
			}
			m.portUsed++
			m.Stats.StoresCommit++
			m.hier.L1D.Access(e.addr, true)
		}
		if e.prevPhys != rename.None {
			m.rt.Free(e.prevPhys)
		}
		for _, v := range e.killVictims {
			m.rt.Free(v)
			m.Stats.EarlyReclaimed++
		}
		m.Stats.Committed++
		if m.trace != nil {
			m.emitRob(e, obs.SquashNone)
		}
		e.valid = false
		m.robHead++
		if m.robHead == len(m.rob) {
			m.robHead = 0
		}
		m.robLen--
	}
}
