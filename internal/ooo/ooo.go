// Package ooo is the out-of-order timing simulator: a SimpleScalar
// sim-outorder-style pipeline (fetch, decode/rename/dispatch, issue,
// writeback, commit) extended with MIPS R10000-style register renaming over
// an explicit physical register file and the paper's DVI hardware: LVM and
// LVM-Stack driven save/restore elimination at dispatch, and early physical
// register reclamation at kill commit.
//
// Architectural semantics come from an embedded functional emulator stepped
// once per dispatched correct-path instruction. Misprediction is detected
// at dispatch (the emulator knows the outcome) but recovery waits until the
// branch resolves at writeback; in between, fetch streams real wrong-path
// instructions from the static image, which consume fetch and decode
// bandwidth, window slots, physical registers, functional units and cache
// ports before being squashed.
//
// # Hardware contexts
//
// The machine runs Config.Contexts SMT hardware contexts through one core.
// Per-context architectural state — the fetch PC and fetch queue, return
// address stack, branch-history register, rename map (a per-context map
// inside the shared rename.Table) and the bound functional emulator — lives
// in a hwContext; the window/ROB (entries carry a context tag), physical
// register file, caches, predictor tables, BTB and the event-scheduler
// structures are shared. Fetch arbitration picks one context per cycle
// (Config.FetchPolicy: round-robin or ICOUNT); dispatch rotates its
// starting context cycle by cycle and shares the machine width. Each
// context executes its own copy of the program in a disjoint address space
// (cache and store-queue addresses are tagged with the context ID above
// the program's address range), so contexts compete for shared capacity
// and bandwidth without aliasing each other's data.
//
// Misprediction recovery is context-scoped: the recovering context's
// younger window entries are marked squashed in place ("holes" — a
// different context's younger entries are unaffected and keep their slots)
// and the maximal squashed suffix is popped; remaining holes drain at the
// window head without consuming commit bandwidth. Only wrong-path entries
// are ever squashed, so holes pin no kill victims and publish no values. A
// single-context machine never leaves a hole (its squash is always a pure
// tail truncation) and is bit-identical to the pre-SMT machine (pinned by
// golden_test.go).
//
// # Scheduling
//
// Two interchangeable schedulers drive issue and writeback; both produce
// bit-identical Stats on every program and configuration (Config.Scheduler
// selects one; the differential tests in sched_test.go pin the
// equivalence).
//
// SchedPolled is the textbook implementation: every cycle it rescans the
// whole window for issuable and completing instructions and walks older
// entries to detect store-to-load conflicts — O(window) host work per
// simulated cycle no matter how little happens.
//
// SchedEventDriven (the default) restructures the same semantics around
// events, so each cycle touches only the instructions something happened
// to:
//
//   - Completion wheel: instructions entering execution are dropped into a
//     calendar queue keyed by their finish cycle; writeback pops exactly
//     the instructions finishing now (sorted by age, so predictor training
//     and recovery order match the polled scan) instead of scanning the
//     window. Latencies beyond the wheel horizon park in their slot and
//     are revisited one wheel turn later.
//   - Wakeup lists: at dispatch an instruction counts its not-yet-ready
//     sources and registers a watcher on each with the rename table
//     (rename.Watch); when a result is produced, writeback drains the
//     register's watchers (rename.TakeWatchers) and decrements their
//     counts. An instruction is examined for issue only when its last
//     outstanding source arrives, entering an age-ordered ready set (a
//     bitset over window slots walked oldest-first) that preserves
//     seniority arbitration for issue width, functional units and cache
//     ports.
//   - Last-store table: an 8-byte-granular hash of the youngest in-flight
//     store per block. A dispatching load records its conflicting store
//     (if any) once, making the per-issue conflict check O(1); in-order
//     commit guarantees that when that store leaves the window no older
//     matching store can remain. Only correct-path stores enter the table,
//     and correct-path entries are never squashed, so context-scoped
//     recovery cannot invalidate a recorded conflict.
//
// Misprediction recovery clears squashed ready bits and purges squashed
// watchers (rename.PurgeWatchers); wheel events and last-store records are
// invalidated lazily by sequence-number checks. All event structures are
// rebuilt by Reset and reuse their storage, so a pooled machine's steady
// state allocates nothing per instruction at any context count.
package ooo

import (
	"fmt"
	"math/bits"

	"dvi/internal/bpred"
	"dvi/internal/cache"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/obs"
	"dvi/internal/prog"
	"dvi/internal/rename"
)

type state uint8

const (
	stDispatched state = iota
	stIssued
	stDone
)

type robEntry struct {
	valid     bool
	seq       uint64
	pc        uint64
	inst      isa.Inst
	class     isa.Class // predecoded pipeline class (prog.Meta)
	lat       uint8     // predecoded fixed latency (prog.Meta)
	ctx       uint8     // owning hardware context
	wrongPath bool
	squashed  bool // context-scoped recovery hole: dead, drains at commit
	st        state
	doneCycle uint64

	// Pipeline trace stamps (cheap unconditional stores; the records they
	// feed are built only when Config.Trace is set).
	traceID       uint64 // fetch sequence number (fetchRec.traceID)
	fetchCycle    uint64
	dispatchCycle uint64
	issueCycle    uint64

	// Renaming.
	hasDest  bool
	destArch isa.Reg
	destPhys rename.PhysReg
	prevPhys rename.PhysReg // None if the arch reg was unmapped
	nSrc     int
	srcPhys  [2]rename.PhysReg

	// DVI reclamation: physical registers unmapped at this instruction's
	// decode (explicit kill or I-DVI), freed when it commits.
	killVictims []rename.PhysReg

	// Memory.
	isLoad, isStore bool
	addr            uint64

	// Control.
	isCtl       bool
	isCondBr    bool
	mispredict  bool
	actualNPC   uint64
	bpInfo      bpred.Info
	hasBpInfo   bool
	histAtFetch uint32
	rasSnap     bpred.RASSnapshot
	mapSnap     [rename.NumArch]rename.PhysReg // recovery checkpoint (mispredicts only)

	// Event-driven scheduler state (SchedEventDriven only).
	waits        uint8  // outstanding not-yet-ready sources
	hasConflict  bool   // a possibly conflicting older store was recorded
	conflictSlot int32  // window slot of that store
	conflictSeq  uint64 // its seq (validates the slot hasn't been recycled)
}

type fetchRec struct {
	pc          uint64
	inst        isa.Inst
	meta        *prog.Meta // predecoded metadata for inst (shared, read-only)
	faulted     bool       // pc was outside the text segment (synthetic HALT)
	traceID     uint64     // per-run fetch sequence number (trace identity)
	fetchCycle  uint64     // cycle this record entered the fetch queue
	predNPC     uint64
	isCtl       bool
	bpInfo      bpred.Info
	hasBpInfo   bool
	histAtFetch uint32
	rasSnap     bpred.RASSnapshot
}

// hwContext is the per-context architectural state of one SMT hardware
// context: the private half of the machine. Everything here belongs to
// exactly one software thread — its fetch stream, return-address stack,
// branch-history register, functional emulator (own memory image), and
// its slice of the statistics. Shared structures live on Machine.
type hwContext struct {
	id  uint8
	emu *emu.Emulator
	ras *bpred.RAS

	// hist is the context's branch-history register. The direction
	// predictor's tables are shared; its live history register is swapped
	// to the fetching context around each fetch group and re-seeded by
	// that context's recovery.
	hist uint32

	// Fetch state.
	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool // stopped at a wrong-path HALT; waiting for redirect
	ifq             []fetchRec
	ifqHead, ifqLen int

	// fillPC/fillValid model the in-flight I-fetch fill on a multi-context
	// machine: when a miss completes, the context consumes the returned
	// line directly instead of re-probing the shared L1I. Without it, N
	// contexts at the same entry PC alias into one L1I set (the context
	// tag sits above the index bits) and N > associativity livelocks: each
	// retry re-probes, finds its line evicted by the other contexts'
	// fills, and stalls again without ever fetching.
	fillPC    uint64
	fillValid bool

	pendingMisp    bool // an unresolved correct-path mispredicted branch exists
	pendingMispSeq uint64

	dispatchHalted bool // correct-path HALT reached; drain and finish
	winCount       int  // live (non-squashed) window entries owned by this context

	// stats is this context's view of the run. Additive fields (fetch,
	// dispatch, commit, elimination, stall and memory counts) sum to the
	// aggregate Machine.Stats across contexts; shared-structure fields
	// (Cycles, MaxPhysInUse, cache stats) are copies of the aggregate.
	stats Stats
}

// ifqAt returns the i-th oldest fetch queue record (0 = head).
func (c *hwContext) ifqAt(i int) *fetchRec {
	idx := c.ifqHead + i
	if idx >= len(c.ifq) {
		idx -= len(c.ifq)
	}
	return &c.ifq[idx]
}

func (c *hwContext) popIFQ() {
	c.ifqHead++
	if c.ifqHead == len(c.ifq) {
		c.ifqHead = 0
	}
	c.ifqLen--
}

// ctxAddr tags an architectural address with its owning context so the
// shared caches and the store-conflict structures never alias across the
// contexts' separate address spaces. The tag sits above any program
// address, leaving the cache index bits intact: contexts compete for the
// same sets (capacity and conflict pressure are modelled) but cannot hit
// each other's lines. Context 0's addresses are untagged, so the
// single-context machine is bit-identical to the pre-SMT one.
func ctxAddr(addr uint64, ctx uint8) uint64 { return addr | uint64(ctx)<<44 }

// Machine is one simulated core executing Config.Contexts hardware
// contexts, each running its own copy of one program.
type Machine struct {
	cfg Config
	img *prog.Image

	ctxs []hwContext

	hier *cache.Hierarchy
	pred *bpred.Predictor
	btb  *bpred.BTB
	rt   *rename.Table

	cycle uint64
	seq   uint64

	// Arbitration rotors (invisible at Contexts=1).
	fetchRR int // context after the one that fetched last
	dispRR  int // context dispatch starts from this cycle

	// Window (circular, shared; entries carry their context tag).
	rob     []robEntry
	robHead int // oldest
	robLen  int

	// Per-cycle resource counters.
	aluUsed, mdUsed, portUsed, issued int

	// Event-driven scheduler structures (see sched.go).
	es evSched

	// Pipeline tracing (trace.go). trace mirrors cfg.Trace; traceRec is
	// the reusable record passed to the sink so emitting does not
	// allocate; traceSeq numbers fetched instructions within the run.
	trace    obs.PipeSink
	traceSeq uint64
	traceRec obs.PipeRecord

	Stats Stats
}

// New builds a machine over its own copy of the program state.
func New(pr *prog.Program, img *prog.Image, cfg Config) *Machine {
	m := &Machine{}
	m.Reset(pr, img, cfg)
	return m
}

// Reset retargets the machine to a (possibly different) program, image
// and configuration and rewinds it to cycle zero. Allocations whose shape
// still fits the new configuration — the embedded emulators' memory
// pages, cache arrays, predictor tables, the window and fetch queues —
// are reused, so a pooled machine runs job after job without rebuilding
// its footprint, including across context-count changes. The reset
// machine is observably identical to a New one.
func (m *Machine) Reset(pr *prog.Program, img *prog.Image, cfg Config) {
	m.img = img
	nCtx := cfg.ContextCount()
	predChanged := m.pred == nil || m.cfg.Pred != cfg.Pred
	if cap(m.ctxs) >= nCtx {
		m.ctxs = m.ctxs[:nCtx]
	} else {
		grown := make([]hwContext, nCtx)
		copy(grown, m.ctxs)
		m.ctxs = grown
	}
	for i := range m.ctxs {
		c := &m.ctxs[i]
		c.id = uint8(i)
		if c.emu == nil {
			c.emu = emu.New(pr, img, cfg.Emu)
		} else {
			c.emu.ResetFor(pr, img, cfg.Emu)
		}
		if c.ras == nil || predChanged {
			c.ras = bpred.NewRAS(cfg.Pred.RASDepth)
		} else {
			c.ras.Reset()
		}
		if len(c.ifq) != cfg.IFQSize {
			c.ifq = make([]fetchRec, cfg.IFQSize)
		}
		c.hist = 0
		c.fetchPC = img.EntryPC
		c.fetchStallUntil = 0
		c.fetchHalted = false
		c.fillPC, c.fillValid = 0, false
		c.ifqHead, c.ifqLen = 0, 0
		c.pendingMisp, c.pendingMispSeq = false, 0
		c.dispatchHalted = false
		c.winCount = 0
		c.stats = Stats{}
	}
	if m.hier == nil || m.cfg.Hierarchy != cfg.Hierarchy {
		m.hier = cache.NewHierarchy(cfg.Hierarchy)
	} else {
		m.hier.Reset()
	}
	if predChanged {
		m.pred = bpred.New(cfg.Pred)
		m.btb = bpred.NewBTB(cfg.Pred.BTBSets, cfg.Pred.BTBAssoc)
	} else {
		m.pred.Reset()
		m.btb.Reset()
	}
	if m.rt == nil || m.rt.NPhys() != cfg.PhysRegs || m.rt.NCtx() != nCtx {
		m.rt = rename.NewTableCtx(cfg.PhysRegs, nCtx)
	} else {
		m.rt.Reset()
	}
	if len(m.rob) != cfg.WindowSize {
		m.rob = make([]robEntry, cfg.WindowSize)
	}
	m.cfg = cfg
	m.es.reset(m)
	m.cycle, m.seq = 0, 0
	m.fetchRR, m.dispRR = 0, 0
	m.robHead, m.robLen = 0, 0
	m.aluUsed, m.mdUsed, m.portUsed, m.issued = 0, 0, 0, 0
	m.trace = cfg.Trace // always reassigned: a pooled machine must not keep a previous job's sink
	m.traceSeq = 0
	m.Stats = Stats{}
}

// Emu exposes context 0's embedded emulator (checksum and architectural
// stats; the single-context machine's only emulator).
func (m *Machine) Emu() *emu.Emulator { return m.ctxs[0].emu }

// EmuCtx exposes hardware context ctx's embedded emulator.
func (m *Machine) EmuCtx(ctx int) *emu.Emulator { return m.ctxs[ctx].emu }

// Contexts returns the number of hardware contexts the machine runs.
func (m *Machine) Contexts() int { return len(m.ctxs) }

// CtxStats returns a copy of the per-context statistics. Additive fields
// sum to the aggregate Stats across contexts; Cycles, MaxPhysInUse and
// the cache stats are shared-structure copies of the aggregate. Call
// after Run (the finalized counters include per-context emulator stats).
func (m *Machine) CtxStats() []Stats {
	out := make([]Stats, len(m.ctxs))
	for i := range m.ctxs {
		out[i] = m.ctxs[i].stats
	}
	return out
}

// Hierarchy exposes the cache hierarchy statistics.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Predictor exposes branch predictor statistics.
func (m *Machine) Predictor() *bpred.Predictor { return m.pred }

// robIdx maps the i-th oldest position (0 = head) to its slot in the
// circular buffer. head+i never exceeds twice the window, so the wrap is
// a compare instead of a division (this runs once per window entry per
// cycle under the polled scheduler).
func (m *Machine) robIdx(i int) int {
	idx := m.robHead + i
	if idx >= len(m.rob) {
		idx -= len(m.rob)
	}
	return idx
}

// robAt returns the i-th oldest entry (0 = head).
func (m *Machine) robAt(i int) *robEntry {
	return &m.rob[m.robIdx(i)]
}

// robOffset is robIdx's inverse: the age position of a slot (0 = oldest).
func (m *Machine) robOffset(slot int) int {
	off := slot - m.robHead
	if off < 0 {
		off += len(m.rob)
	}
	return off
}

// inWindow reports whether slot currently holds a live window entry.
func (m *Machine) inWindow(slot int) bool {
	return m.robOffset(slot) < m.robLen
}

// done reports whether simulation has finished.
func (m *Machine) done() bool {
	if m.cfg.MaxInsts != 0 && m.Stats.Committed >= m.cfg.MaxInsts {
		return true
	}
	if m.robLen != 0 {
		return false
	}
	for i := range m.ctxs {
		if !m.ctxs[i].dispatchHalted {
			return false
		}
	}
	return true
}

// ErrDeadlock reports a wedged pipeline (an internal error, not a program
// property).
var ErrDeadlock = fmt.Errorf("ooo: pipeline deadlock")

// finalize fills the end-of-run fields: each context's shared-structure
// copies and emulator stats, the aggregate's summed emulator stats, and
// the shared cache hierarchy counters.
func (m *Machine) finalize() {
	m.Stats.L1I = m.hier.L1I.Stats
	m.Stats.L1D = m.hier.L1D.Stats
	m.Stats.L2 = m.hier.L2.Stats
	m.Stats.Emu = emu.Stats{}
	for i := range m.ctxs {
		c := &m.ctxs[i]
		c.stats.Cycles = m.Stats.Cycles
		c.stats.MaxPhysInUse = m.Stats.MaxPhysInUse
		c.stats.L1I, c.stats.L1D, c.stats.L2 = m.Stats.L1I, m.Stats.L1D, m.Stats.L2
		c.stats.Emu = c.emu.Stats
		addEmu(&m.Stats.Emu, c.emu.Stats)
	}
}

// Run simulates until every context's program halts or the configured
// aggregate instruction budget is reached, and returns the final
// statistics.
func (m *Machine) Run() (Stats, error) {
	idleCycles := 0
	lastCommitted := uint64(0)
	for !m.done() {
		m.step()
		if m.Stats.Committed == lastCommitted {
			idleCycles++
			if idleCycles > 100000 {
				return m.Stats, fmt.Errorf("%w at cycle %d (pc %#x, rob %d, free %d)",
					ErrDeadlock, m.cycle, m.ctxs[0].fetchPC, m.robLen, m.rt.FreeCount())
			}
		} else {
			idleCycles = 0
			lastCommitted = m.Stats.Committed
		}
	}
	if m.trace != nil {
		m.drainTrace()
	}
	m.finalize()
	return m.Stats, nil
}

// step advances one cycle. Stage order matches sim-outorder: results
// written back this cycle can issue dependents this cycle and commit runs
// first so freed resources are visible next cycle.
func (m *Machine) step() {
	m.cycle++
	m.Stats.Cycles++
	m.aluUsed, m.mdUsed, m.portUsed, m.issued = 0, 0, 0, 0

	m.commit()
	if m.cfg.Scheduler == SchedPolled {
		m.writebackPolled()
		m.issuePolled()
	} else {
		m.writebackEvent()
		m.issueEvent()
	}
	m.dispatch()
	m.fetch()

	if used := m.rt.InUse(); used > m.Stats.MaxPhysInUse {
		m.Stats.MaxPhysInUse = used
	}
}

// --- fetch ---

// fetchEligible reports whether context c can use the fetch stage this
// cycle: not finished, not parked at a wrong-path HALT, not serving an
// I-cache miss, has fetch-queue room, and (in the no-wrong-path-fetch
// ablation) no unresolved misprediction.
func (m *Machine) fetchEligible(c *hwContext) bool {
	return !c.dispatchHalted && !c.fetchHalted &&
		m.cycle >= c.fetchStallUntil &&
		c.ifqLen < len(c.ifq) &&
		(m.cfg.WrongPathFetch || !c.pendingMisp)
}

// fetchArb picks the context that fetches this cycle: the single context
// when there is one, else round-robin rotation or the ICOUNT minimum over
// the eligible contexts.
func (m *Machine) fetchArb() *hwContext {
	if len(m.ctxs) == 1 {
		c := &m.ctxs[0]
		if m.fetchEligible(c) {
			return c
		}
		return nil
	}
	n := len(m.ctxs)
	if m.cfg.FetchPolicy == FetchICOUNT {
		var best *hwContext
		bestCount := 0
		for i := 0; i < n; i++ {
			c := &m.ctxs[i]
			if !m.fetchEligible(c) {
				continue
			}
			if count := c.ifqLen + c.winCount; best == nil || count < bestCount {
				best, bestCount = c, count
			}
		}
		return best
	}
	for k := 0; k < n; k++ {
		c := &m.ctxs[(m.fetchRR+k)%n]
		if m.fetchEligible(c) {
			m.fetchRR = int(c.id) + 1
			if m.fetchRR == n {
				m.fetchRR = 0
			}
			return c
		}
	}
	return nil
}

// fetch runs one context's fetch group. The shared predictor's history
// register is swapped to the fetching context around the group (a no-op
// at Contexts=1: the register already holds the only context's history).
func (m *Machine) fetch() {
	c := m.fetchArb()
	if c == nil {
		return
	}
	m.pred.SetHistory(c.hist)
	m.fetchGroup(c)
	c.hist = m.pred.History()
}

func (m *Machine) fetchGroup(c *hwContext) {
	// One I-cache access per cycle at the group's start; the group runs to
	// the machine width or the first predicted-taken transfer
	// (sim-outorder's fetch model: no break at line boundaries, so small
	// code-layout shifts from inserted annotations do not perturb fetch).
	first := true
	for n := 0; n < m.cfg.IssueWidth && c.ifqLen < len(c.ifq); n++ {
		pc := c.fetchPC
		if first {
			// A completed miss forwards its fill once; any other PC
			// (redirect while the fill was in flight) probes normally.
			forwarded := c.fillValid && c.fillPC == pc
			c.fillValid = false
			if !forwarded {
				lat := m.hier.L1I.Access(ctxAddr(pc, c.id), false)
				if lat > m.cfg.Hierarchy.L1I.HitLatency {
					c.fetchStallUntil = m.cycle + uint64(lat)
					if len(m.ctxs) > 1 {
						// Single-context keeps probe-on-retry (the retry
						// always hits: no other fetch stream can evict
						// the fill), preserving the pre-SMT cache stats.
						c.fillPC, c.fillValid = pc, true
					}
					return
				}
			}
			first = false
		}

		in, meta, inText := m.img.AtMeta(pc)
		if in.Op == isa.HALT && c.pendingMisp {
			// Wrong-path fetch ran off the program; wait for redirect.
			c.fetchHalted = true
			return
		}

		// Fill the fetch queue slot in place: the record embeds a RAS
		// snapshot, so building it in a local and copying it in would move
		// a few hundred bytes per fetched instruction. Checkpoint fields
		// (bpInfo, histAtFetch, rasSnap) are written only for control
		// instructions and only read behind isCtl/hasBpInfo, so stale
		// values in a reused slot are never observed.
		idx := c.ifqHead + c.ifqLen
		if idx >= len(c.ifq) {
			idx -= len(c.ifq)
		}
		rec := &c.ifq[idx]
		rec.pc, rec.inst, rec.meta, rec.faulted = pc, in, meta, !inText
		rec.traceID, rec.fetchCycle = m.traceSeq, m.cycle
		m.traceSeq++
		rec.predNPC = pc + isa.InstBytes
		rec.isCtl, rec.hasBpInfo = false, false
		taken := false
		switch meta.Class {
		case isa.ClassBranch:
			rec.isCtl = true
			rec.histAtFetch = m.pred.History()
			predTaken, info := m.pred.Predict(pc)
			rec.bpInfo, rec.hasBpInfo = info, true
			if predTaken {
				rec.predNPC = meta.Target
				taken = true
			}
			rec.rasSnap = c.ras.Snapshot()
		case isa.ClassJump:
			rec.isCtl = true
			rec.histAtFetch = m.pred.History()
			taken = true
			switch in.Op {
			case isa.J, isa.JAL:
				rec.predNPC = meta.Target
				if in.Op == isa.JAL {
					c.ras.Push(pc + isa.InstBytes)
				}
			case isa.JALR:
				c.ras.Push(pc + isa.InstBytes)
				if t, ok := m.btb.Lookup(pc); ok {
					rec.predNPC = t
				} else {
					taken = false // no prediction: fall through, will mispredict
				}
			case isa.JR:
				if in.IsReturn {
					if t, ok := c.ras.Pop(); ok {
						rec.predNPC = t
					} else {
						taken = false
					}
				} else if t, ok := m.btb.Lookup(pc); ok {
					rec.predNPC = t
				} else {
					taken = false
				}
			}
			rec.rasSnap = c.ras.Snapshot()
		}

		c.ifqLen++
		m.Stats.Fetched++
		c.stats.Fetched++
		c.fetchPC = rec.predNPC
		if taken {
			break // fetch group breaks on a predicted-taken transfer
		}
	}
}

// --- dispatch (decode + rename) ---

// dispatch shares the machine's decode/rename bandwidth among the
// contexts, starting from a per-cycle rotating context. Global structural
// stalls (window full, empty free list) stop dispatch for every context;
// per-context conditions (drained fetch queue, the no-wrong-path-fetch
// ablation, a reached HALT) only move arbitration to the next context.
func (m *Machine) dispatch() {
	nc := len(m.ctxs)
	start := m.dispRR
	if m.dispRR++; m.dispRR == nc {
		m.dispRR = 0
	}
	n := 0 // decode slots consumed this cycle (shared width)
	for k := 0; k < nc && n < m.cfg.IssueWidth; k++ {
		c := &m.ctxs[(start+k)%nc]
		if c.dispatchHalted {
			continue
		}
		if !m.dispatchCtx(c, &n) {
			return // global structural stall
		}
	}
}

// dispatchCtx dispatches from context c until its fetch queue drains, a
// per-context condition stops it (returning true: the next context may
// use the remaining width), or a global structural stall blocks the
// machine (returning false).
func (m *Machine) dispatchCtx(c *hwContext, n *int) bool {
	for *n < m.cfg.IssueWidth && c.ifqLen > 0 {
		if c.pendingMisp && !m.cfg.WrongPathFetch {
			// Ablation mode: no wrong-path execution at all. Whatever is
			// in the fetch queue past the branch waits to be flushed at
			// recovery.
			return true
		}
		rec := &c.ifq[c.ifqHead]
		in := rec.inst

		// Save/restore elimination happens at decode and consumes no
		// window slot (paper §5: dead saves and restores "are not
		// dispatched"). Only meaningful on the correct path.
		if !c.pendingMisp {
			if in.Op == isa.LVST && m.cfg.Emu.Scheme != emu.ElimOff &&
				c.emu.Tracker.SaveEliminable(in.Rs2) {
				c.popIFQ()
				st := c.emu.Step()
				m.assertStep(rec, st, true)
				m.Stats.ElimSaves++
				m.Stats.Committed++
				c.stats.ElimSaves++
				c.stats.Committed++
				if m.trace != nil {
					m.emitDecode(rec, c.id, obs.KindElimSave, obs.SquashNone, false, 0)
				}
				*n++
				continue
			}
			if in.Op == isa.LVLD && m.cfg.Emu.Scheme == emu.ElimLVMStack &&
				c.emu.Tracker.RestoreEliminable(in.Rd) {
				c.popIFQ()
				st := c.emu.Step()
				m.assertStep(rec, st, true)
				m.Stats.ElimRests++
				m.Stats.Committed++
				c.stats.ElimRests++
				c.stats.Committed++
				if m.trace != nil {
					m.emitDecode(rec, c.id, obs.KindElimRestore, obs.SquashNone, false, 0)
				}
				*n++
				continue
			}
		}

		// E-DVI kill annotations consume decode bandwidth but no window
		// slot, functional unit, or commit slot (paper §7: they are
		// effectively no-ops; the checkpoint mechanism tracks reclaimed
		// registers, "conserving space in the reorder buffer"). Their
		// victims ride on the context's youngest in-flight instruction and
		// are freed when it commits — at most one commit group before the
		// kill's own notional commit. Correct-path instructions are never
		// squashed in this simulator (misprediction is detected at
		// dispatch), so the early free is safe.
		if in.Op == isa.KILL {
			c.popIFQ()
			if c.pendingMisp {
				// Wrong-path kills have no lasting effect (see DESIGN.md).
				if m.trace != nil {
					m.emitDecode(rec, c.id, obs.KindKill, obs.SquashWrongPath, true, 0)
				}
				*n++
				continue
			}
			st := c.emu.Step()
			m.assertStep(rec, st, false)
			m.Stats.KillsSeen++
			c.stats.KillsSeen++
			victims := uint8(0)
			for k := uint32(st.Killed); k != 0; k &= k - 1 {
				victim, ok := m.rt.UnmapCtx(int(c.id), uint8(bits.TrailingZeros32(k)))
				if !ok {
					continue
				}
				victims++
				if y := m.youngestLive(c); y != nil {
					y.killVictims = append(y.killVictims, victim)
				} else {
					// No in-flight instruction of this context: the kill
					// is trivially non-speculative; reclaim now.
					m.rt.Free(victim)
					m.Stats.EarlyReclaimed++
					c.stats.EarlyReclaimed++
				}
			}
			if m.trace != nil {
				m.emitDecode(rec, c.id, obs.KindKill, obs.SquashNone, false, victims)
			}
			*n++
			continue
		}

		// Window slot required for everything else.
		if m.robLen == len(m.rob) {
			m.Stats.WindowFullCycles++
			c.stats.WindowFullCycles++
			return false
		}
		// Physical register required for destinations.
		if rec.meta.HasDest && m.rt.FreeCount() == 0 {
			m.Stats.RenameStallCycles++
			c.stats.RenameStallCycles++
			return false
		}

		// Initialize the window entry field by field: a struct literal
		// would copy the embedded RAS/map checkpoints (a few hundred
		// bytes) on every dispatch. Checkpoint fields are written only
		// when needed and only read behind the flags set here.
		slot := m.robIdx(m.robLen)
		e := &m.rob[slot]
		e.valid = true
		e.seq = m.seq
		e.pc = rec.pc
		e.inst = in
		e.class = rec.meta.Class
		e.lat = rec.meta.Lat
		e.ctx = c.id
		e.wrongPath = false
		e.squashed = false
		e.st = stDispatched
		e.doneCycle = 0
		e.traceID = rec.traceID
		e.fetchCycle = rec.fetchCycle
		e.dispatchCycle = m.cycle
		e.issueCycle = 0
		e.hasDest = false
		e.destArch = 0
		e.destPhys = rename.None
		e.prevPhys = rename.None
		e.nSrc = 0
		e.killVictims = e.killVictims[:0] // reuse ring storage
		e.isLoad, e.isStore = false, false
		e.addr = 0
		e.isCtl = rec.isCtl
		e.isCondBr = rec.meta.Class == isa.ClassBranch
		e.mispredict = false
		e.actualNPC = 0
		e.hasBpInfo = rec.hasBpInfo
		if rec.isCtl {
			e.bpInfo = rec.bpInfo
			e.histAtFetch = rec.histAtFetch
			// rec.rasSnap is NOT copied here: it is only ever read when
			// recovering a mispredicted branch, which dispatchCorrect
			// detects below — copying the ~270-byte snapshot there, only
			// for actual mispredicts, keeps it off the per-control-
			// instruction fast path.
		}
		m.seq++

		if c.pendingMisp {
			m.dispatchWrongPath(c, e, rec)
		} else {
			if rec.pc != c.emu.PC {
				panic(fmt.Sprintf("ooo: correct-path fetch diverged: fetched %#x, emulator at %#x", rec.pc, c.emu.PC))
			}
			if in.Op == isa.HALT {
				if rec.faulted {
					// Synthetic HALT: correct-path control flow left the
					// text segment. Halt as before, but report it.
					m.Stats.Faults++
					c.stats.Faults++
				}
				c.dispatchHalted = true
				c.popIFQ()
				e.valid = false
				return true
			}
			m.dispatchCorrect(c, e, rec)
		}
		if m.cfg.Scheduler != SchedPolled {
			m.schedDispatch(e, slot)
		}

		c.popIFQ()
		m.robLen++
		c.winCount++
		m.Stats.Dispatched++
		c.stats.Dispatched++
		*n++
	}
	return true
}

// youngestLive returns context c's youngest live (non-squashed) window
// entry, or nil when it has none in flight. At Contexts=1 the youngest
// entry overall always matches (holes never exist), so the walk is O(1).
func (m *Machine) youngestLive(c *hwContext) *robEntry {
	if c.winCount == 0 {
		return nil
	}
	for i := m.robLen - 1; i >= 0; i-- {
		if y := m.robAt(i); y.ctx == c.id && !y.squashed {
			return y
		}
	}
	return nil
}

func (m *Machine) assertStep(rec *fetchRec, st emu.Step, wantElim bool) {
	if rec.pc != st.PC {
		panic(fmt.Sprintf("ooo: emulator desync: decode %#x vs step %#x", rec.pc, st.PC))
	}
	if st.Eliminated != wantElim {
		panic("ooo: dispatch elimination decision disagrees with emulator")
	}
}

// dispatchCorrect renames and functionally executes a correct-path
// instruction of context c.
func (m *Machine) dispatchCorrect(c *hwContext, e *robEntry, rec *fetchRec) {
	st := c.emu.Step()
	m.assertStep(rec, st, false)
	in := e.inst
	meta := rec.meta
	ctx := int(c.id)

	// Sources first (read old mappings), then kill victims, then the
	// destination: a kill mask plus destination write at a call (jal
	// writes ra, I-DVI kills temps) must see sources under pre-rename
	// mappings.
	for i := 0; i < int(meta.NSrc); i++ {
		r := meta.Srcs[i]
		if r == isa.Zero {
			continue
		}
		p, mapped := m.rt.MapCtx(ctx, uint8(r))
		if mapped {
			e.srcPhys[e.nSrc] = p
			e.nSrc++
		}
	}

	// DVI: unmap registers that transitioned live->dead at this
	// instruction (explicit kill mask or I-DVI at call/return). Victims
	// are pinned in the entry and freed when it commits (paper §4.1:
	// reclamation only when non-speculative).
	for k := uint32(st.Killed); k != 0; k &= k - 1 {
		if victim, ok := m.rt.UnmapCtx(ctx, uint8(bits.TrailingZeros32(k))); ok {
			e.killVictims = append(e.killVictims, victim)
		}
	}

	if meta.HasDest {
		newP, prevP, renamed := m.rt.RenameCtx(ctx, uint8(meta.Dest))
		if !renamed {
			panic("ooo: rename failed after free-list check")
		}
		e.hasDest, e.destArch, e.destPhys, e.prevPhys = true, meta.Dest, newP, prevP
	}

	switch meta.Class {
	case isa.ClassLoad:
		e.isLoad, e.addr = true, ctxAddr(st.Addr, c.id)
	case isa.ClassStore:
		e.isStore, e.addr = true, ctxAddr(st.Addr, c.id)
	}

	e.actualNPC = st.NextPC
	if e.isCtl {
		if rec.predNPC != st.NextPC {
			// Misprediction detected at dispatch; recovery at writeback.
			e.mispredict = true
			e.rasSnap = rec.rasSnap
			e.mapSnap = m.rt.MapSnapshotCtx(ctx)
			c.pendingMisp = true
			c.pendingMispSeq = e.seq
		}
	}

	// NOPs occupy a slot but no functional unit: done immediately.
	if in.Op == isa.NOP {
		e.st = stDone
		e.doneCycle = m.cycle
	}
}

// dispatchWrongPath renames a wrong-path instruction without functional
// execution. Its DVI decode effects are skipped (equivalent to perfect
// checkpoint recovery of the LVM structures, see DESIGN.md).
func (m *Machine) dispatchWrongPath(c *hwContext, e *robEntry, rec *fetchRec) {
	m.Stats.WrongPath++
	c.stats.WrongPath++
	e.wrongPath = true
	in := e.inst
	meta := rec.meta
	ctx := int(c.id)
	for i := 0; i < int(meta.NSrc); i++ {
		r := meta.Srcs[i]
		if r == isa.Zero {
			continue
		}
		if p, mapped := m.rt.MapCtx(ctx, uint8(r)); mapped {
			e.srcPhys[e.nSrc] = p
			e.nSrc++
		}
	}
	if meta.HasDest {
		newP, prevP, renamed := m.rt.RenameCtx(ctx, uint8(meta.Dest))
		if !renamed {
			panic("ooo: rename failed after free-list check")
		}
		e.hasDest, e.destArch, e.destPhys, e.prevPhys = true, meta.Dest, newP, prevP
	}
	switch meta.Class {
	case isa.ClassLoad:
		e.isLoad = true // no address: charged a port and hit latency only
	case isa.ClassStore:
		e.isStore = true
	}
	if in.Op == isa.NOP || in.Op == isa.HALT {
		e.st = stDone
		e.doneCycle = m.cycle
	}
}

// --- issue (polled scheduler; see sched.go for the event-driven one) ---

func (m *Machine) srcsReady(e *robEntry) bool {
	for i := 0; i < e.nSrc; i++ {
		if !m.rt.Ready(e.srcPhys[i]) {
			return false
		}
	}
	return true
}

// olderStoreConflict scans entries older than index i for live stores
// whose (8-byte aligned) address overlaps addr. It returns the youngest
// match. Context-tagged addresses keep contexts' separate address spaces
// from aliasing; squashed holes are skipped (their register references
// are stale).
func (m *Machine) olderStoreConflict(i int, addr uint64) (conflict, dataReady bool) {
	a := addr &^ 7
	for j := i - 1; j >= 0; j-- {
		o := m.robAt(j)
		if !o.isStore || o.squashed {
			continue
		}
		if o.addr&^7 == a {
			return true, m.srcsReady(o)
		}
	}
	return false, false
}

func (m *Machine) issuePolled() {
	for i := 0; i < m.robLen && m.issued < m.cfg.IssueWidth; i++ {
		e := m.robAt(i)
		if e.squashed || e.st != stDispatched || !m.srcsReady(e) {
			continue
		}
		cls := e.class
		switch cls {
		case isa.ClassStore:
			// Stores complete when operands are ready (the cache access
			// happens at commit, sim-outorder behaviour) but still consume
			// an issue slot for address generation.
			m.issued++
			e.st = stDone
			e.issueCycle = m.cycle
			e.doneCycle = m.cycle
			continue
		case isa.ClassLoad:
			if e.wrongPath {
				if m.portUsed >= m.cfg.CachePorts {
					continue
				}
				m.portUsed++
				m.issued++
				m.Stats.WrongPathLoads++
				m.ctxs[e.ctx].stats.WrongPathLoads++
				e.st = stIssued
				e.issueCycle = m.cycle
				e.doneCycle = m.cycle + uint64(m.cfg.Hierarchy.L1D.HitLatency)
				continue
			}
			conflict, dataReady := m.olderStoreConflict(i, e.addr)
			if conflict {
				if !dataReady {
					continue // wait for the producing store's data
				}
				// Store-to-load forwarding: one cycle, no cache port.
				m.issued++
				m.Stats.LoadForwarded++
				m.ctxs[e.ctx].stats.LoadForwarded++
				e.st = stIssued
				e.issueCycle = m.cycle
				e.doneCycle = m.cycle + 1
				continue
			}
			if m.portUsed >= m.cfg.CachePorts {
				continue
			}
			m.portUsed++
			m.issued++
			m.Stats.LoadsIssued++
			m.ctxs[e.ctx].stats.LoadsIssued++
			lat := m.hier.L1D.Access(e.addr, false)
			e.st = stIssued
			e.issueCycle = m.cycle
			e.doneCycle = m.cycle + uint64(lat)
			continue
		case isa.ClassIntMul, isa.ClassIntDiv:
			if m.mdUsed >= m.cfg.IntMulDiv {
				continue
			}
			m.mdUsed++
			m.issued++
			e.st = stIssued
			e.issueCycle = m.cycle
			if cls == isa.ClassIntMul {
				e.doneCycle = m.cycle + uint64(m.cfg.MulLatency)
			} else {
				e.doneCycle = m.cycle + uint64(m.cfg.DivLatency)
			}
			continue
		default: // ALU, branches, jumps
			if m.aluUsed >= m.cfg.IntALUs {
				continue
			}
			m.aluUsed++
			m.issued++
			e.st = stIssued
			e.issueCycle = m.cycle
			e.doneCycle = m.cycle + uint64(e.lat)
		}
	}
}

// --- writeback (polled scheduler) ---

func (m *Machine) writebackPolled() {
	for i := 0; i < m.robLen; i++ {
		e := m.robAt(i)
		if e.squashed || e.st != stIssued || e.doneCycle > m.cycle {
			continue
		}
		e.st = stDone
		if e.hasDest {
			m.rt.SetReady(e.destPhys)
		}
		if e.isCtl && !e.wrongPath {
			m.resolveControl(e, i)
			// On a mispredict, recovery marked the context's younger
			// entries squashed (skipped above) and popped the squashed
			// suffix (robLen shrank, ending the scan at Contexts=1);
			// other contexts' younger entries still complete this cycle.
		}
	}
}

// resolveControl trains the predictor structures and performs misprediction
// recovery for a resolved correct-path control instruction.
func (m *Machine) resolveControl(e *robEntry, idx int) {
	if e.hasBpInfo {
		taken := e.actualNPC != e.pc+isa.InstBytes
		m.pred.Resolve(e.pc, taken, e.bpInfo)
	}
	if e.inst.Op == isa.JALR || (e.inst.Op == isa.JR && !e.inst.IsReturn) {
		m.btb.Update(e.pc, e.actualNPC)
	}
	if !e.mispredict {
		return
	}
	c := &m.ctxs[e.ctx]
	if !c.pendingMisp || e.seq != c.pendingMispSeq {
		panic("ooo: recovering a branch that is not the pending misprediction")
	}

	m.Stats.Mispredicts++
	m.Stats.Recoveries++
	c.stats.Mispredicts++
	c.stats.Recoveries++

	// Squash everything younger than the branch in its context. Another
	// context's younger entries keep their slots: squashed same-context
	// entries become holes that drain at the window head. All of them are
	// wrong-path (within a context, everything dispatched after the
	// mispredicted branch is wrong-path), so they pin no kill victims and
	// publish no values.
	for i := idx + 1; i < m.robLen; i++ {
		o := m.robAt(i)
		if o.ctx != e.ctx || o.squashed {
			continue
		}
		o.squashed = true
		c.winCount--
		if m.trace != nil {
			// Squashed entries stay intact in their slots until reuse;
			// record them before the scheduler forgets about them.
			m.emitRob(o, obs.SquashRecovery)
		}
		if m.cfg.Scheduler != SchedPolled {
			m.es.clearReady(m.robIdx(i))
		}
	}
	// Pop the maximal squashed suffix so the tail slot is reusable; at
	// Contexts=1 this is the whole squashed range (a pure truncation).
	for m.robLen > idx+1 && m.robAt(m.robLen-1).squashed {
		m.robLen--
	}
	if m.cfg.Scheduler != SchedPolled {
		m.rt.PurgeWatchers(m.es.liveTok)
	}

	// Restore the context's rename map and rebuild the shared free list
	// from every context's surviving in-flight state.
	m.rt.RestoreMapCtx(int(e.ctx), e.mapSnap)
	var used rename.Bits
	for i := 0; i < m.robLen; i++ {
		o := m.robAt(i)
		if o.squashed {
			continue
		}
		if o.hasDest {
			used.Set(o.destPhys)
			if o.prevPhys != rename.None {
				used.Set(o.prevPhys)
			}
		}
		for _, v := range o.killVictims {
			used.Set(v)
		}
	}
	m.rt.RebuildFree(&used)

	// Restore fetch structures to the state just after this instruction.
	c.ras.Restore(e.rasSnap)
	if e.isCondBr {
		m.pred.RestoreHistory(e.bpInfo.Hist, e.actualNPC != e.pc+isa.InstBytes)
	} else {
		// Target mispredict of an unconditional transfer: it never shifted
		// history, so reinstate the fetch-time value as-is.
		m.pred.SetHistory(e.histAtFetch)
	}
	c.hist = m.pred.History()

	// Redirect the context's fetch. Everything still in its fetch queue
	// was fetched on the mispredicted path and is flushed without
	// dispatching.
	if m.trace != nil {
		for i := 0; i < c.ifqLen; i++ {
			m.emitDecode(c.ifqAt(i), c.id, obs.KindInst, obs.SquashFetch, true, 0)
		}
	}
	c.ifqHead, c.ifqLen = 0, 0
	c.fetchPC = e.actualNPC
	c.fetchHalted = false
	c.fetchStallUntil = 0
	c.pendingMisp = false
}

// --- commit ---

func (m *Machine) commit() {
	for n := 0; n < m.cfg.IssueWidth && m.robLen > 0; {
		e := m.robAt(0)
		if e.squashed {
			// A recovery hole reaching the head drains for free: it holds
			// no resources (its registers were reclaimed when the free
			// list was rebuilt) and consumes no commit bandwidth.
			e.valid = false
			m.robHead++
			if m.robHead == len(m.rob) {
				m.robHead = 0
			}
			m.robLen--
			continue
		}
		if e.st != stDone {
			return
		}
		if e.wrongPath {
			panic(fmt.Sprintf("ooo: wrong-path instruction at commit: %v @%#x", e.inst, e.pc))
		}
		c := &m.ctxs[e.ctx]
		if e.isStore {
			if m.portUsed >= m.cfg.CachePorts {
				m.Stats.PortStallCycles++
				c.stats.PortStallCycles++
				return
			}
			m.portUsed++
			m.Stats.StoresCommit++
			c.stats.StoresCommit++
			m.hier.L1D.Access(e.addr, true)
		}
		if e.prevPhys != rename.None {
			m.rt.Free(e.prevPhys)
		}
		for _, v := range e.killVictims {
			m.rt.Free(v)
			m.Stats.EarlyReclaimed++
			c.stats.EarlyReclaimed++
		}
		m.Stats.Committed++
		c.stats.Committed++
		if m.trace != nil {
			m.emitRob(e, obs.SquashNone)
		}
		e.valid = false
		c.winCount--
		m.robHead++
		if m.robHead == len(m.rob) {
			m.robHead = 0
		}
		m.robLen--
		n++
	}
}
