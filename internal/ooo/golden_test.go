package ooo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/workload"
)

// The single-context golden gate: a Contexts=1 machine must produce
// Stats bit-identical to the pre-multi-context machine. The golden file
// in testdata/ was generated from the last single-context-only revision
// (run with DVI_GOLDEN_UPDATE=1 to regenerate — only legitimate when the
// single-context machine is intentionally changed).
//
// goldenStats mirrors exactly the Stats fields that existed before the
// multi-context refactor, so Stats may grow new fields (per-context
// counters, cache summaries) without invalidating the goldens: the gate
// pins the pre-existing counters, new fields are covered by their own
// tests.

const goldenPath = "testdata/single_context_stats.json"

type goldenStats struct {
	Cycles uint64

	Fetched    uint64
	Dispatched uint64
	WrongPath  uint64
	Committed  uint64
	KillsSeen  uint64
	ElimSaves  uint64
	ElimRests  uint64

	Mispredicts uint64
	Recoveries  uint64

	RenameStallCycles uint64
	WindowFullCycles  uint64
	PortStallCycles   uint64

	LoadsIssued    uint64
	StoresCommit   uint64
	LoadForwarded  uint64
	WrongPathLoads uint64

	MaxPhysInUse   int
	EarlyReclaimed uint64

	Faults uint64

	Emu emu.Stats
}

func toGolden(s Stats) goldenStats {
	return goldenStats{
		Cycles:            s.Cycles,
		Fetched:           s.Fetched,
		Dispatched:        s.Dispatched,
		WrongPath:         s.WrongPath,
		Committed:         s.Committed,
		KillsSeen:         s.KillsSeen,
		ElimSaves:         s.ElimSaves,
		ElimRests:         s.ElimRests,
		Mispredicts:       s.Mispredicts,
		Recoveries:        s.Recoveries,
		RenameStallCycles: s.RenameStallCycles,
		WindowFullCycles:  s.WindowFullCycles,
		PortStallCycles:   s.PortStallCycles,
		LoadsIssued:       s.LoadsIssued,
		StoresCommit:      s.StoresCommit,
		LoadForwarded:     s.LoadForwarded,
		WrongPathLoads:    s.WrongPathLoads,
		MaxPhysInUse:      s.MaxPhysInUse,
		EarlyReclaimed:    s.EarlyReclaimed,
		Faults:            s.Faults,
		Emu:               s.Emu,
	}
}

// goldenCase is one (program, machine shape, scheduler) cell of the
// differential corpus.
type goldenCase struct {
	key string
	run func(t *testing.T) Stats
}

// goldenCorpus enumerates the corpus: the scheduler-differential fuzz
// axes (random programs × machine shapes) plus real workloads × schemes,
// each under both schedulers. short trims the corpus for -short runs;
// regeneration always uses the full corpus.
func goldenCorpus(short bool) []goldenCase {
	var cases []goldenCase
	seeds := 12
	if short {
		seeds = 4
	}
	cfgs := schedFuzzConfigs()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		pr := buildFuzzProgram(seed)
		img, err := pr.Link()
		if err != nil {
			panic(fmt.Sprintf("golden corpus: seed %d: link: %v", seed, err))
		}
		for ci, cfg := range cfgs {
			for _, s := range []Scheduler{SchedEventDriven, SchedPolled} {
				cfg, s := cfg, s
				cases = append(cases, goldenCase{
					key: fmt.Sprintf("fuzz/seed%02d/cfg%02d/%v", seed, ci, s),
					run: func(t *testing.T) Stats { return runScheduler(t, pr, img, cfg, s) },
				})
			}
		}
	}

	names := []string{"compress", "li"}
	if short {
		names = names[:1]
	}
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			panic("golden corpus: unknown workload " + name)
		}
		pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
		if err != nil {
			panic(fmt.Sprintf("golden corpus: %s: %v", name, err))
		}
		for _, scheme := range []emu.Scheme{emu.ElimOff, emu.ElimLVMStack} {
			cfg := DefaultConfig()
			cfg.Emu.Scheme = scheme
			if scheme == emu.ElimOff {
				cfg.Emu.DVI = core.Config{Level: core.None}
			}
			cfg.MaxInsts = 60_000
			for _, s := range []Scheduler{SchedEventDriven, SchedPolled} {
				cfg, s := cfg, s
				cases = append(cases, goldenCase{
					key: fmt.Sprintf("work/%s/scheme%d/%v", name, scheme, s),
					run: func(t *testing.T) Stats { return runScheduler(t, pr, img, cfg, s) },
				})
			}
		}
	}
	return cases
}

// TestGoldenSingleContext pins the single-context machine bit-identical
// to the pre-refactor path across the differential corpus.
func TestGoldenSingleContext(t *testing.T) {
	if os.Getenv("DVI_GOLDEN_UPDATE") != "" {
		out := make(map[string]goldenStats)
		for _, c := range goldenCorpus(false) {
			out[c.key] = toGolden(c.run(t))
		}
		blob, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cases to %s", len(out), goldenPath)
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with DVI_GOLDEN_UPDATE=1): %v", err)
	}
	var want map[string]goldenStats
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCorpus(testing.Short()) {
		c := c
		t.Run(c.key, func(t *testing.T) {
			w, ok := want[c.key]
			if !ok {
				t.Fatalf("golden file has no case %q (regenerate with DVI_GOLDEN_UPDATE=1)", c.key)
			}
			if got := toGolden(c.run(t)); got != w {
				t.Fatalf("single-context Stats diverge from pre-refactor golden:\n got %+v\nwant %+v", got, w)
			}
		})
	}
}
