package ooo

import (
	"testing"

	"dvi/internal/emu"
	"dvi/internal/obs"
	"dvi/internal/workload"
)

// Multi-context (SMT) machine tests: scheduler equivalence at N > 1,
// per-context accounting, fetch policies, architectural completion of
// every context, pooling across context counts, and the zero-alloc
// steady state with two contexts.

// smtConfig scales a single-context shape to n contexts, preserving its
// rename headroom: each context pins 32 physical registers, so the
// stress character of a starved-renaming shape carries over.
func smtConfig(cfg Config, n int, policy FetchPolicy) Config {
	cfg.Contexts = n
	cfg.FetchPolicy = policy
	cfg.PhysRegs = 32*n + (cfg.PhysRegs - 32)
	return cfg
}

// sumCtxStats folds the additive per-context fields into one Stats for
// comparison against the aggregate.
func sumCtxStats(ctx []Stats) Stats {
	var sum Stats
	for _, s := range ctx {
		sum.Fetched += s.Fetched
		sum.Dispatched += s.Dispatched
		sum.WrongPath += s.WrongPath
		sum.Committed += s.Committed
		sum.KillsSeen += s.KillsSeen
		sum.ElimSaves += s.ElimSaves
		sum.ElimRests += s.ElimRests
		sum.Mispredicts += s.Mispredicts
		sum.Recoveries += s.Recoveries
		sum.RenameStallCycles += s.RenameStallCycles
		sum.WindowFullCycles += s.WindowFullCycles
		sum.PortStallCycles += s.PortStallCycles
		sum.LoadsIssued += s.LoadsIssued
		sum.StoresCommit += s.StoresCommit
		sum.LoadForwarded += s.LoadForwarded
		sum.WrongPathLoads += s.WrongPathLoads
		sum.EarlyReclaimed += s.EarlyReclaimed
		sum.Faults += s.Faults
		addEmu(&sum.Emu, s.Emu)
	}
	return sum
}

// checkCtxInvariants asserts the per-context accounting contract against
// the aggregate: additive fields sum to it, shared-structure fields are
// copies of it.
func checkCtxInvariants(t *testing.T, m *Machine, agg Stats) {
	t.Helper()
	ctx := m.CtxStats()
	if len(ctx) != m.Contexts() {
		t.Fatalf("CtxStats len %d, want %d", len(ctx), m.Contexts())
	}
	sum := sumCtxStats(ctx)
	// Graft the shared fields so a single struct compare covers the rest.
	sum.Cycles = agg.Cycles
	sum.MaxPhysInUse = agg.MaxPhysInUse
	sum.L1I, sum.L1D, sum.L2 = agg.L1I, agg.L1D, agg.L2
	if sum != agg {
		t.Fatalf("per-context stats do not sum to aggregate:\n sum %+v\n agg %+v", sum, agg)
	}
	for i, s := range ctx {
		if s.Cycles != agg.Cycles || s.MaxPhysInUse != agg.MaxPhysInUse ||
			s.L1I != agg.L1I || s.L1D != agg.L1D || s.L2 != agg.L2 {
			t.Fatalf("ctx %d shared-structure fields are not aggregate copies: %+v", i, s)
		}
	}
}

// TestMultiContextSchedulerDifferential extends the scheduler-equivalence
// property to SMT machines: at 2 and 4 contexts, under both fetch
// policies, the polled and event-driven schedulers must produce
// bit-identical aggregate and per-context Stats across the fuzz programs
// and machine shapes.
func TestMultiContextSchedulerDifferential(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	cfgs := schedFuzzConfigs()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		pr := buildFuzzProgram(seed)
		img, err := pr.Link()
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		for ci, base := range cfgs {
			for _, n := range []int{2, 4} {
				for _, policy := range []FetchPolicy{FetchRoundRobin, FetchICOUNT} {
					cfg := smtConfig(base, n, policy)
					cfg.Scheduler = SchedPolled
					mp := New(pr, img, cfg)
					polled, err := mp.Run()
					if err != nil {
						t.Fatalf("seed %d cfg %d n=%d %v polled: %v", seed, ci, n, policy, err)
					}
					cfg.Scheduler = SchedEventDriven
					me := New(pr, img, cfg)
					event, err := me.Run()
					if err != nil {
						t.Fatalf("seed %d cfg %d n=%d %v event: %v", seed, ci, n, policy, err)
					}
					if polled != event {
						t.Fatalf("seed %d cfg %d n=%d %v: schedulers diverge:\npolled %+v\nevent  %+v",
							seed, ci, n, policy, polled, event)
					}
					pc, ec := mp.CtxStats(), me.CtxStats()
					for i := range pc {
						if pc[i] != ec[i] {
							t.Fatalf("seed %d cfg %d n=%d %v ctx %d: per-context stats diverge:\npolled %+v\nevent  %+v",
								seed, ci, n, policy, i, pc[i], ec[i])
						}
					}
					checkCtxInvariants(t, me, event)
				}
			}
		}
	}
}

// TestMultiContextWorkloadDifferential covers a real benchmark binary:
// elimination fast paths, kills and cache behaviour under two contexts,
// both schedulers and both fetch policies.
func TestMultiContextWorkloadDifferential(t *testing.T) {
	w, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("unknown workload compress")
	}
	pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []FetchPolicy{FetchRoundRobin, FetchICOUNT} {
		cfg := smtConfig(DefaultConfig(), 2, policy)
		cfg.MaxInsts = 40_000
		polled := runScheduler(t, pr, img, cfg, SchedPolled)
		event := runScheduler(t, pr, img, cfg, SchedEventDriven)
		if polled != event {
			t.Fatalf("%v: schedulers diverge:\npolled %+v\nevent  %+v", policy, polled, event)
		}
	}
}

// TestMultiContextArchitecturalCompletion runs four contexts to
// completion and checks each executed the full program: same checksum
// and architectural instruction counts as a single-context reference,
// with the aggregate the exact sum.
func TestMultiContextArchitecturalCompletion(t *testing.T) {
	pr := fibProgram(12)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(pr, img, DefaultConfig()).Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := smtConfig(DefaultConfig(), 4, FetchRoundRobin)
	m := New(pr, img, cfg)
	agg, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * ref.Committed; agg.Committed != want {
		t.Fatalf("aggregate committed %d, want %d (4× single-context)", agg.Committed, want)
	}
	for i := 0; i < m.Contexts(); i++ {
		e := m.EmuCtx(i)
		if e.Checksum != m.EmuCtx(0).Checksum {
			t.Fatalf("ctx %d checksum %#x differs from ctx 0 %#x", i, e.Checksum, m.EmuCtx(0).Checksum)
		}
		if e.Stats != ref.Emu {
			t.Fatalf("ctx %d architectural stats differ from single-context reference:\n got %+v\nwant %+v",
				i, e.Stats, ref.Emu)
		}
	}
	checkCtxInvariants(t, m, agg)

	// Per-context elimination accounting: every context eliminated exactly
	// what the single-context machine did (homogeneous multiprogramming).
	for i, s := range m.CtxStats() {
		if s.ElimSaves != ref.ElimSaves || s.ElimRests != ref.ElimRests ||
			s.KillsSeen != ref.KillsSeen || s.EarlyReclaimed != ref.EarlyReclaimed {
			t.Fatalf("ctx %d DVI accounting differs from single-context reference:\n got elim=%d/%d kills=%d early=%d\nwant elim=%d/%d kills=%d early=%d",
				i, s.ElimSaves, s.ElimRests, s.KillsSeen, s.EarlyReclaimed,
				ref.ElimSaves, ref.ElimRests, ref.KillsSeen, ref.EarlyReclaimed)
		}
	}
}

// TestFetchPolicies pins that both arbitration policies complete the same
// architectural work (timing may differ) and that ICOUNT is exercised —
// its cycle count must be positive and its contexts all finish.
func TestFetchPolicies(t *testing.T) {
	pr := fibProgram(11)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	var committed [2]uint64
	for pi, policy := range []FetchPolicy{FetchRoundRobin, FetchICOUNT} {
		m := New(pr, img, smtConfig(DefaultConfig(), 2, policy))
		st, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i, s := range m.CtxStats() {
			if s.Committed == 0 {
				t.Fatalf("%v: ctx %d committed nothing", policy, i)
			}
		}
		committed[pi] = st.Committed
	}
	if committed[0] != committed[1] {
		t.Fatalf("policies commit different work: rr %d, icount %d", committed[0], committed[1])
	}
}

// TestResetAcrossContextCounts pins pooling across machine shapes: a
// machine reused via Reset with a different context count produces
// exactly a fresh machine's aggregate and per-context statistics, in
// both directions (grow and shrink).
func TestResetAcrossContextCounts(t *testing.T) {
	pr := fibProgram(11)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := DefaultConfig()
	cfg4 := smtConfig(DefaultConfig(), 4, FetchICOUNT)

	fresh1, err := New(pr, img, cfg1).Run()
	if err != nil {
		t.Fatal(err)
	}
	f4 := New(pr, img, cfg4)
	fresh4, err := f4.Run()
	if err != nil {
		t.Fatal(err)
	}

	m := New(pr, img, cfg1)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	m.Reset(pr, img, cfg4)
	got4, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got4 != fresh4 {
		t.Fatalf("1→4 context reuse diverges:\n got %+v\nwant %+v", got4, fresh4)
	}
	want4, have4 := f4.CtxStats(), m.CtxStats()
	for i := range want4 {
		if have4[i] != want4[i] {
			t.Fatalf("1→4 context reuse: ctx %d stats diverge:\n got %+v\nwant %+v", i, have4[i], want4[i])
		}
	}

	m.Reset(pr, img, cfg1)
	got1, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got1 != fresh1 {
		t.Fatalf("4→1 context reuse diverges:\n got %+v\nwant %+v", got1, fresh1)
	}
}

// TestMultiContextTraceLabels runs a traced two-context machine and
// checks the pipeline records carry context IDs consistent with the
// per-context commit accounting.
func TestMultiContextTraceLabels(t *testing.T) {
	pr := fibProgram(10)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	cfg := smtConfig(DefaultConfig(), 2, FetchRoundRobin)
	buf := obs.NewPipeBuffer(0)
	cfg.Trace = buf
	m := New(pr, img, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var committedInst, elim [2]uint64
	for _, r := range buf.Records() {
		if int(r.Ctx) >= m.Contexts() {
			t.Fatalf("record with out-of-range ctx %d", r.Ctx)
		}
		if r.Squash == obs.SquashNone {
			switch r.Kind {
			case obs.KindInst:
				committedInst[r.Ctx]++
			case obs.KindElimSave, obs.KindElimRestore:
				elim[r.Ctx]++
			}
		}
	}
	for i, s := range m.CtxStats() {
		if wantElim := s.ElimSaves + s.ElimRests; elim[i] != wantElim {
			t.Fatalf("ctx %d: %d eliminated-record traces, want %d", i, elim[i], wantElim)
		}
		// KindInst commits are the committed count minus the
		// decode-eliminated instructions (traced as elim records; kill
		// annotations never enter the window and are KindKill records).
		if want := s.Committed - s.ElimSaves - s.ElimRests; committedInst[i] != want {
			t.Fatalf("ctx %d: %d committed-instruction traces, want %d", i, committedInst[i], want)
		}
	}
	if committedInst[0] == 0 || committedInst[1] == 0 {
		t.Fatal("expected committed traces from both contexts")
	}
}

// TestMultiContextSteadyStateZeroAlloc extends the 0 allocs/op invariant
// to a two-context machine under both schedulers: the per-context
// structures (fetch queues, emulators, RAS) must all reuse their storage
// across Reset.
func TestMultiContextSteadyStateZeroAlloc(t *testing.T) {
	pr := fibProgram(12)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduler{SchedEventDriven, SchedPolled} {
		t.Run(sched.String(), func(t *testing.T) {
			cfg := smtConfig(DefaultConfig(), 2, FetchICOUNT)
			cfg.Scheduler = sched
			m := New(pr, img, cfg)
			if _, err := m.Run(); err != nil {
				t.Fatal(err) // warm pages, ring buffers and victim lists
			}
			allocs := testing.AllocsPerRun(3, func() {
				m.Reset(pr, img, cfg)
				if _, err := m.Run(); err != nil {
					t.Error(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state 2-context run allocated %.1f objects, want 0", allocs)
			}
		})
	}
}

// TestContextsRunAllSchemes runs a 2-context machine under every
// elimination scheme against per-scheme single-context references: the
// per-context architectural and elimination counts must match the
// reference exactly.
func TestContextsRunAllSchemes(t *testing.T) {
	pr := fibProgram(12)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []emu.Scheme{emu.ElimOff, emu.ElimLVM, emu.ElimLVMStack} {
		base := DefaultConfig()
		base.Emu.Scheme = scheme
		ref, err := New(pr, img, base).Run()
		if err != nil {
			t.Fatalf("scheme %v ref: %v", scheme, err)
		}
		m := New(pr, img, smtConfig(base, 2, FetchRoundRobin))
		agg, err := m.Run()
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		checkCtxInvariants(t, m, agg)
		for i, s := range m.CtxStats() {
			if s.Emu != ref.Emu || s.ElimSaves != ref.ElimSaves || s.ElimRests != ref.ElimRests {
				t.Fatalf("scheme %v ctx %d diverges from single-context reference", scheme, i)
			}
		}
	}
}

// TestContextsExceedL1IAssoc pins the in-flight-fill regression: with more
// contexts than L1I ways, every context's entry PC aliases into the same
// I-cache set (the context tag sits above the index bits), and without the
// fill forward a completed miss re-probes, finds its line evicted by the
// other contexts' fills, and stalls again — fetch livelocks at zero
// instructions. Eight contexts on the default 4-way L1I must still finish
// with every context committing.
func TestContextsExceedL1IAssoc(t *testing.T) {
	pr := fibProgram(10)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	if assoc := DefaultConfig().Hierarchy.L1I.Assoc; assoc >= 8 {
		t.Fatalf("default L1I associativity %d no longer below 8; pick a larger context count", assoc)
	}
	for _, sched := range []Scheduler{SchedEventDriven, SchedPolled} {
		m := New(pr, img, func() Config {
			cfg := smtConfig(DefaultConfig(), 8, FetchRoundRobin)
			cfg.Scheduler = sched
			return cfg
		}())
		agg, err := m.Run()
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		for i, s := range m.CtxStats() {
			if s.Committed == 0 {
				t.Fatalf("%v: ctx %d committed nothing (fetch livelock)", sched, i)
			}
		}
		checkCtxInvariants(t, m, agg)
	}
}

// TestCheckContexts covers the front-door validation.
func TestCheckContexts(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.CheckContexts(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cfg.Contexts = -1
	if err := cfg.CheckContexts(); err == nil {
		t.Fatal("negative contexts accepted")
	}
	cfg.Contexts = 4 // 4*32+1 = 129 > default 96 registers
	if err := cfg.CheckContexts(); err == nil {
		t.Fatal("4 contexts on 96 registers accepted")
	}
	cfg.PhysRegs = 192
	if err := cfg.CheckContexts(); err != nil {
		t.Fatalf("4 contexts on 192 registers rejected: %v", err)
	}
}
