package ooo

import (
	"strings"
	"testing"

	"dvi/internal/obs"
)

// traceRun executes pr with a pipeline trace attached and returns the
// captured records plus the run's stats.
func traceRun(t *testing.T, cfg Config, sched Scheduler) ([]obs.PipeRecord, Stats) {
	t.Helper()
	pr := fibProgram(12)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	buf := obs.NewPipeBuffer(0)
	cfg.Scheduler = sched
	cfg.Trace = buf
	m := New(pr, img, cfg)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Records(), st
}

// TestTraceConsistency checks the record stream against the run's own
// statistics and the per-record stage invariants, for both schedulers.
func TestTraceConsistency(t *testing.T) {
	for _, sched := range []Scheduler{SchedEventDriven, SchedPolled} {
		t.Run(sched.String(), func(t *testing.T) {
			recs, st := traceRun(t, DefaultConfig(), sched)
			if len(recs) == 0 {
				t.Fatal("no records")
			}
			var committed, elimSave, elimRest, kills, wrongPath uint64
			seen := map[uint64]bool{}
			for i := range recs {
				r := &recs[i]
				if seen[r.ID] {
					t.Fatalf("instruction %d retired twice", r.ID)
				}
				seen[r.ID] = true
				if r.Fetch == 0 {
					t.Fatalf("record %d: no fetch cycle", r.ID)
				}
				if r.Retire < r.Fetch {
					t.Fatalf("record %d: retire %d before fetch %d", r.ID, r.Retire, r.Fetch)
				}
				// Stage stamps are monotonic where present: fetch ≤
				// dispatch ≤ issue ≤ complete ≤ retire.
				prev := r.Fetch
				for _, c := range []uint64{r.Dispatch, r.Issue, r.Complete, r.Retire} {
					if c == 0 {
						continue
					}
					if c < prev {
						t.Fatalf("record %d: stage cycles not monotonic: %+v", r.ID, *r)
					}
					prev = c
				}
				switch {
				case r.Kind == obs.KindElimSave:
					elimSave++
				case r.Kind == obs.KindElimRestore:
					elimRest++
				case r.Kind == obs.KindKill && !r.WrongPath:
					kills++
				case r.Kind == obs.KindInst && r.Squash == obs.SquashNone:
					if r.WrongPath {
						t.Fatalf("record %d: wrong-path instruction committed", r.ID)
					}
					committed++
				}
				if r.WrongPath && r.Squash == obs.SquashNone && r.Kind == obs.KindInst {
					t.Fatalf("record %d: wrong-path without squash cause", r.ID)
				}
				if r.WrongPath {
					wrongPath++
				}
			}
			// Committed window records plus decode-stage events account
			// exactly for the machine's own counters: Stats.Committed
			// includes decode-eliminated saves/restores and kills, which
			// retire as their own record kinds, not as KindInst.
			if want := st.Committed - st.ElimSaves - st.ElimRests - st.KillsSeen; committed != want {
				t.Errorf("committed records = %d, want %d (Stats.Committed %d)", committed, want, st.Committed)
			}
			if elimSave != st.ElimSaves {
				t.Errorf("elim-save records = %d, want %d", elimSave, st.ElimSaves)
			}
			if elimRest != st.ElimRests {
				t.Errorf("elim-restore records = %d, want %d", elimRest, st.ElimRests)
			}
			if kills != st.KillsSeen {
				t.Errorf("correct-path kill records = %d, want %d", kills, st.KillsSeen)
			}
			if st.WrongPath > 0 && wrongPath == 0 {
				t.Errorf("stats saw %d wrong-path dispatches but no wrong-path records", st.WrongPath)
			}
		})
	}
}

// TestTraceSchedulerEquivalence pins the two schedulers to the same
// record stream: the event-driven and polled cores are bit-identical, so
// every instruction must carry identical cycle stamps under both.
func TestTraceSchedulerEquivalence(t *testing.T) {
	ev, _ := traceRun(t, DefaultConfig(), SchedEventDriven)
	po, _ := traceRun(t, DefaultConfig(), SchedPolled)
	if len(ev) != len(po) {
		t.Fatalf("record counts differ: event %d vs polled %d", len(ev), len(po))
	}
	for i := range ev {
		if ev[i] != po[i] {
			t.Fatalf("record %d differs:\nevent:  %+v\npolled: %+v", i, ev[i], po[i])
		}
	}
}

// TestTraceRendererRoundTrip runs a real workload through both renderers:
// the Konata log must carry one retire per record, and the Chrome events
// must cover every record with at least a fetch slice.
func TestTraceRendererRoundTrip(t *testing.T) {
	recs, _ := traceRun(t, DefaultConfig(), SchedEventDriven)

	var sb strings.Builder
	if err := obs.WriteKonata(&sb, recs); err != nil {
		t.Fatal(err)
	}
	retires := strings.Count(sb.String(), "\nR\t")
	if retires != len(recs) {
		t.Errorf("konata retires = %d, want %d", retires, len(recs))
	}

	evs := obs.ChromeTraceEvents(recs)
	fetches := 0
	for _, ev := range evs {
		if strings.HasPrefix(ev.Name, "fetch ") {
			fetches++
		}
	}
	if fetches != len(recs) {
		t.Errorf("chrome fetch events = %d, want %d", fetches, len(recs))
	}
}
