package ooo

import (
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/prog"
	"dvi/internal/workload"
)

// The scheduler equivalence property: SchedPolled and SchedEventDriven
// are two implementations of the same machine, so on every program and
// every configuration they must produce identical Stats — not just the
// same architectural results, but the same cycle counts, stall
// breakdowns, forwarding counts and register high-water marks.

// runScheduler builds one machine with the given scheduler and runs it.
func runScheduler(t *testing.T, pr *prog.Program, img *prog.Image, cfg Config, s Scheduler) Stats {
	t.Helper()
	cfg.Scheduler = s
	st, err := New(pr, img, cfg).Run()
	if err != nil {
		t.Fatalf("%v scheduler: %v", s, err)
	}
	return st
}

// schedFuzzConfigs is the differential corpus's machine-shape axis: the
// shared fuzzConfigs shapes (wide/narrow window, fetch-stall ablation,
// all DVI schemes, starved renaming) plus shapes that stress the event
// structures specifically.
func schedFuzzConfigs() []Config {
	out := fuzzConfigs()
	tiny := DefaultConfig() // tiny window: constant squash/recycle traffic
	tiny.WindowSize = 8
	tiny.IFQSize = 4
	out = append(out, tiny)
	narrow := DefaultConfig() // 1-port, 1-ALU: arbitration-bound issue
	narrow.CachePorts = 1
	narrow.IntALUs = 1
	narrow.IntMulDiv = 1
	out = append(out, narrow)
	// Windows larger than 64 entries: the ready bitset spans multiple
	// words, exercising issueRange's word-boundary masks and the
	// two-range wrap walk (the service wire API lets clients configure
	// any window size).
	for _, ws := range []int{65, 200} {
		big := DefaultConfig()
		big.WindowSize = ws
		big.IssueWidth = 8
		big.PhysRegs = 160
		out = append(out, big)
	}
	return out
}

// TestSchedulerDifferentialFuzz runs both schedulers over random programs
// (calls, frames, loops, kills, memory traffic, mispredicted branches) ×
// machine shapes and asserts bit-identical Stats.
func TestSchedulerDifferentialFuzz(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		pr := buildFuzzProgram(seed)
		img, err := pr.Link()
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		for ci, cfg := range schedFuzzConfigs() {
			polled := runScheduler(t, pr, img, cfg, SchedPolled)
			event := runScheduler(t, pr, img, cfg, SchedEventDriven)
			if polled != event {
				t.Fatalf("seed %d cfg %d: schedulers diverge:\npolled %+v\nevent  %+v",
					seed, ci, polled, event)
			}
		}
	}
}

// TestSchedulerDifferentialWorkloads runs both schedulers over the real
// benchmark binaries (bounded), covering the elimination fast paths and
// cache behaviour the synthetic fuzz programs exercise less.
func TestSchedulerDifferentialWorkloads(t *testing.T) {
	names := []string{"compress", "gcc", "li"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		pr, img, err := workload.CompileSpec(w, 1, workload.BuildOptions{EDVI: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, scheme := range []emu.Scheme{emu.ElimOff, emu.ElimLVMStack} {
			cfg := DefaultConfig()
			cfg.Emu.Scheme = scheme
			if scheme == emu.ElimOff {
				cfg.Emu.DVI = core.Config{Level: core.None}
			}
			cfg.MaxInsts = 60_000
			polled := runScheduler(t, pr, img, cfg, SchedPolled)
			event := runScheduler(t, pr, img, cfg, SchedEventDriven)
			if polled != event {
				t.Fatalf("%s scheme %v: schedulers diverge:\npolled %+v\nevent  %+v",
					name, scheme, polled, event)
			}
		}
	}
}

// TestSchedulerResetAcrossKinds pins pooling across scheduler switches: a
// machine reused via Reset with the other scheduler produces exactly a
// fresh machine's statistics (the event structures rebuild from any prior
// state).
func TestSchedulerResetAcrossKinds(t *testing.T) {
	pr := fibProgram(12)
	img, err := pr.Link()
	if err != nil {
		t.Fatal(err)
	}
	cfgE := DefaultConfig()
	cfgP := DefaultConfig()
	cfgP.Scheduler = SchedPolled

	fresh, err := New(pr, img, cfgE).Run()
	if err != nil {
		t.Fatal(err)
	}

	m := New(pr, img, cfgP)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	m.Reset(pr, img, cfgE)
	reused, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if reused != fresh {
		t.Fatalf("event machine reused after polled run diverges:\n got %+v\nwant %+v", reused, fresh)
	}
}
