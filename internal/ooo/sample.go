package ooo

import (
	"fmt"

	"dvi/internal/bpred"
	"dvi/internal/cache"
	"dvi/internal/emu"
)

// WarmState bundles the functionally-warmed microarchitectural state a
// sampled-simulation checkpoint carries alongside the architectural
// snapshot: the cache hierarchy, the direction predictor, the branch
// target buffer and the return address stack. The sampler fills it from
// structures it warms during the functional fast-forward pass; Boot
// transplants it into a pooled machine so a detailed interval does not
// start from cold caches.
type WarmState struct {
	Hier cache.HierarchySnapshot
	Pred bpred.PredictorSnapshot
	BTB  bpred.BTBSnapshot
	RAS  bpred.RASSnapshot
}

// Boot positions a freshly Reset machine at a checkpointed mid-program
// point: the embedded emulator's architectural state is restored from
// arch (the machine's memory must still be the pristine loaded image
// Reset left it with — arch carries a page delta against that baseline),
// the warm microarchitectural state is transplanted, and fetch is
// redirected to the restored PC. The pipeline itself starts empty; the
// sampler's detailed warmup run absorbs the fill transient.
//
// Sampling is a single-context protocol: a checkpoint captures one
// program's architectural state and the sampler's interval accounting
// assumes one committed-instruction stream, so Boot rejects a
// multi-context machine (the front doors validate the combination and
// return an error before any machine is built).
func (m *Machine) Boot(arch *emu.Snapshot, warm *WarmState) {
	if m.cycle != 0 || m.Stats.Committed != 0 {
		panic("ooo: Boot on a machine that already ran; Reset first")
	}
	if len(m.ctxs) != 1 {
		panic("ooo: Boot on a multi-context machine; sampling is single-context")
	}
	c := &m.ctxs[0]
	c.emu.RestoreSnapshot(arch)
	if warm != nil {
		m.hier.Restore(&warm.Hier)
		m.pred.Restore(&warm.Pred)
		m.btb.Restore(&warm.BTB)
		c.ras.Restore(warm.RAS)
		c.hist = m.pred.History()
	}
	c.fetchPC = c.emu.PC
	if c.emu.Halted {
		c.dispatchHalted = true
	}
}

// RunUntil simulates until the committed original-instruction count
// reaches target or the program halts, and returns the statistics so
// far. Unlike Run it ignores the configured MaxInsts: the sampler calls
// it twice per interval — once to the end of the detailed warmup, once to
// the end of the measured region — and differences the two Stats. The
// machine stays in a resumable state between calls. Single-context only
// (the machine was positioned by Boot).
func (m *Machine) RunUntil(target uint64) (Stats, error) {
	c := &m.ctxs[0]
	idleCycles := 0
	lastCommitted := m.Stats.Committed
	for !(c.dispatchHalted && m.robLen == 0) && m.Stats.Committed < target {
		m.step()
		if m.Stats.Committed == lastCommitted {
			idleCycles++
			if idleCycles > 100000 {
				return m.Stats, fmt.Errorf("%w at cycle %d (pc %#x, rob %d, free %d)",
					ErrDeadlock, m.cycle, c.fetchPC, m.robLen, m.rt.FreeCount())
			}
		} else {
			idleCycles = 0
			lastCommitted = m.Stats.Committed
		}
	}
	m.Stats.Emu = c.emu.Stats
	return m.Stats, nil
}
