package ooo

import (
	"fmt"

	"dvi/internal/bpred"
	"dvi/internal/cache"
	"dvi/internal/emu"
)

// WarmState bundles the functionally-warmed microarchitectural state a
// sampled-simulation checkpoint carries alongside the architectural
// snapshot: the cache hierarchy, the direction predictor, the branch
// target buffer and the return address stack. The sampler fills it from
// structures it warms during the functional fast-forward pass; Boot
// transplants it into a pooled machine so a detailed interval does not
// start from cold caches.
type WarmState struct {
	Hier cache.HierarchySnapshot
	Pred bpred.PredictorSnapshot
	BTB  bpred.BTBSnapshot
	RAS  bpred.RASSnapshot
}

// Boot positions a freshly Reset machine at a checkpointed mid-program
// point: the embedded emulator's architectural state is restored from
// arch (the machine's memory must still be the pristine loaded image
// Reset left it with — arch carries a page delta against that baseline),
// the warm microarchitectural state is transplanted, and fetch is
// redirected to the restored PC. The pipeline itself starts empty; the
// sampler's detailed warmup run absorbs the fill transient.
func (m *Machine) Boot(arch *emu.Snapshot, warm *WarmState) {
	if m.cycle != 0 || m.Stats.Committed != 0 {
		panic("ooo: Boot on a machine that already ran; Reset first")
	}
	m.emu.RestoreSnapshot(arch)
	if warm != nil {
		m.hier.Restore(&warm.Hier)
		m.pred.Restore(&warm.Pred)
		m.btb.Restore(&warm.BTB)
		m.ras.Restore(warm.RAS)
	}
	m.fetchPC = m.emu.PC
	if m.emu.Halted {
		m.dispatchHalted = true
	}
}

// RunUntil simulates until the committed original-instruction count
// reaches target or the program halts, and returns the statistics so
// far. Unlike Run it ignores the configured MaxInsts: the sampler calls
// it twice per interval — once to the end of the detailed warmup, once to
// the end of the measured region — and differences the two Stats. The
// machine stays in a resumable state between calls.
func (m *Machine) RunUntil(target uint64) (Stats, error) {
	idleCycles := 0
	lastCommitted := m.Stats.Committed
	for !(m.dispatchHalted && m.robLen == 0) && m.Stats.Committed < target {
		m.step()
		if m.Stats.Committed == lastCommitted {
			idleCycles++
			if idleCycles > 100000 {
				return m.Stats, fmt.Errorf("%w at cycle %d (pc %#x, rob %d, free %d)",
					ErrDeadlock, m.cycle, m.fetchPC, m.robLen, m.rt.FreeCount())
			}
		} else {
			idleCycles = 0
			lastCommitted = m.Stats.Committed
		}
	}
	m.Stats.Emu = m.emu.Stats
	return m.Stats, nil
}
