package ooo

import "dvi/internal/obs"

// Pipeline tracing (Config.Trace). The machine stamps fetch/dispatch/
// issue cycles unconditionally — a handful of integer stores per
// instruction — and builds trace records only behind a `m.trace != nil`
// guard, at the points where an instruction leaves the machine: commit,
// misprediction squash, fetch-queue flush, decode-time elimination, and
// the end-of-run drain. Records are written into the reusable traceRec
// and passed by pointer, so a warm sink (obs.PipeBuffer with grown
// capacity) keeps the zero-allocation steady state. Every record carries
// its hardware context ID, so the renderers can lay multi-context
// pipelines out in per-context lanes.

// emitRob records a window entry leaving the machine at the current
// cycle — by commit (cause SquashNone) or by squash/drain.
func (m *Machine) emitRob(e *robEntry, cause obs.SquashCause) {
	complete := uint64(0)
	if e.st == stDone {
		complete = e.doneCycle
	}
	m.traceRec = obs.PipeRecord{
		ID:        e.traceID,
		PC:        e.pc,
		Inst:      e.inst,
		Ctx:       e.ctx,
		Fetch:     e.fetchCycle,
		Dispatch:  e.dispatchCycle,
		Issue:     e.issueCycle,
		Complete:  complete,
		Retire:    m.cycle,
		Kind:      obs.KindInst,
		Squash:    cause,
		WrongPath: e.wrongPath,
	}
	m.trace.Emit(&m.traceRec)
}

// emitDecode records an instruction disposed of before entering the
// window: eliminated saves/restores, kill annotations, and fetch-queue
// flushes/drains.
func (m *Machine) emitDecode(rec *fetchRec, ctx uint8, kind obs.PipeKind, cause obs.SquashCause, wrongPath bool, victims uint8) {
	m.traceRec = obs.PipeRecord{
		ID:        rec.traceID,
		PC:        rec.pc,
		Inst:      rec.inst,
		Ctx:       ctx,
		Fetch:     rec.fetchCycle,
		Retire:    m.cycle,
		Kind:      kind,
		Squash:    cause,
		WrongPath: wrongPath,
		Victims:   victims,
	}
	m.trace.Emit(&m.traceRec)
}

// drainTrace records everything still in flight when the run ends (the
// instruction-budget cutoff leaves a populated window and fetch queues).
// Squashed holes were already recorded when their recovery marked them.
func (m *Machine) drainTrace() {
	for i := 0; i < m.robLen; i++ {
		e := m.robAt(i)
		if e.squashed {
			continue
		}
		m.emitRob(e, obs.SquashDrain)
	}
	for ci := range m.ctxs {
		c := &m.ctxs[ci]
		for i := 0; i < c.ifqLen; i++ {
			m.emitDecode(c.ifqAt(i), c.id, obs.KindInst, obs.SquashDrain, c.pendingMisp, 0)
		}
	}
}
