package ooo

import (
	"fmt"

	"dvi/internal/bpred"
	"dvi/internal/cache"
	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/obs"
	"dvi/internal/rename"
)

// Scheduler selects the simulator's internal scheduling algorithm. Both
// produce bit-identical Stats on every program and configuration (pinned
// by the differential tests in sched_test.go); they differ only in host
// cost per simulated cycle.
type Scheduler uint8

const (
	// SchedEventDriven (the default, zero value) drives issue and
	// writeback from events: a completion wheel keyed by finish cycle,
	// per-physical-register wakeup lists, and an age-ordered ready set,
	// so each cycle touches only the instructions something happened to.
	SchedEventDriven Scheduler = iota
	// SchedPolled is the original sim-outorder-style implementation that
	// rescans the whole window every cycle. Kept as the differential
	// reference for the event-driven scheduler.
	SchedPolled
)

// String names the scheduler for logs and test labels.
func (s Scheduler) String() string {
	if s == SchedPolled {
		return "polled"
	}
	return "event"
}

// FetchPolicy selects how the fetch stage arbitrates its one I-cache
// access per cycle among hardware contexts (meaningful only when
// Config.Contexts > 1; a single-context machine always fetches its only
// context).
type FetchPolicy uint8

const (
	// FetchRoundRobin (the default, zero value) rotates fetch among the
	// eligible contexts cycle by cycle.
	FetchRoundRobin FetchPolicy = iota
	// FetchICOUNT fetches for the eligible context with the fewest
	// instructions in its fetch queue plus the shared window (Tullsen's
	// ICOUNT heuristic: feed the context draining fastest), ties broken
	// toward the lower context ID.
	FetchICOUNT
)

// String names the policy for flags, wire enums and test labels.
func (p FetchPolicy) String() string {
	if p == FetchICOUNT {
		return "icount"
	}
	return "round-robin"
}

// Config parameterizes the simulated machine. DefaultConfig reproduces the
// paper's Figure 2.
type Config struct {
	IssueWidth int // fetch/decode/issue/commit width
	WindowSize int // unified instruction window / reorder buffer (RUU)
	IFQSize    int // fetch queue depth
	PhysRegs   int // integer physical register file size (§4 sweeps this)

	// Contexts is the number of SMT hardware contexts sharing the core
	// (0 or 1 = the single-context machine). Each context runs its own
	// copy of the program in its own address space and rename map; the
	// window, physical register file, caches and predictor are shared.
	// PhysRegs must be at least Contexts*32+1 (CheckContexts).
	Contexts int
	// FetchPolicy arbitrates fetch among contexts (Contexts > 1 only).
	FetchPolicy FetchPolicy

	// Scheduler selects the simulation algorithm (not a property of the
	// modelled machine: results are identical either way).
	Scheduler Scheduler

	IntALUs    int // total integer units
	IntMulDiv  int // units capable of mul/div
	CachePorts int // fully independent cache ports (§5.3 sweeps this)

	MulLatency int
	DivLatency int

	Hierarchy cache.HierarchyConfig
	Pred      bpred.Config

	// Emu configures the DVI hardware and elimination scheme; the
	// emulator inside the simulator uses it for architectural semantics
	// and the pipeline uses its decisions at dispatch.
	Emu emu.Config

	// WrongPathFetch controls whether instructions beyond a mispredicted
	// branch are fetched, renamed and executed until the branch resolves
	// (true, the realistic mode) or fetch simply stalls (false; ablation).
	WrongPathFetch bool

	// MaxInsts stops simulation after this many committed original
	// instructions (0 = run to completion).
	MaxInsts uint64

	// Trace, when non-nil, receives a per-instruction pipeline lifecycle
	// record for every instruction that leaves the machine (commit,
	// squash, flush, drain), under either scheduler. Tracing does not
	// change timing: with it off (nil, the default) the core's only
	// overhead is a few integer stamps per instruction and the
	// steady-state zero-alloc gates still hold. Not a property of the
	// modelled machine — excluded from cache keys and report identity.
	Trace obs.PipeSink
}

// DefaultConfig returns the paper's machine: 4-wide, 64-entry window,
// 4 int ALUs (2 mul/div), 2 cache ports, Figure 2 memory system, 16-bit
// history combining predictor, and an effectively unconstrained 96-entry
// physical register file.
func DefaultConfig() Config {
	return Config{
		IssueWidth: 4,
		WindowSize: 64,
		IFQSize:    16,
		PhysRegs:   96,
		IntALUs:    4,
		IntMulDiv:  2,
		CachePorts: 2,
		MulLatency: 3,
		DivLatency: 20,
		Hierarchy:  cache.DefaultHierarchyConfig(),
		Pred:       bpred.DefaultConfig(),
		Emu: emu.Config{
			DVI:    core.DefaultConfig(),
			Scheme: emu.ElimLVMStack,
		},
		WrongPathFetch: true,
	}
}

// ContextCount returns the effective number of hardware contexts (0 and 1
// both mean the single-context machine).
func (c Config) ContextCount() int {
	if c.Contexts < 1 {
		return 1
	}
	return c.Contexts
}

// CheckContexts validates the context configuration: a front door (CLI,
// service, session) calls it to reject impossible machines with an error
// instead of letting Machine construction panic. Each context pins 32
// physical registers for its architectural state, so PhysRegs must leave
// at least one register to rename.
func (c Config) CheckContexts() error {
	if c.Contexts < 0 {
		return fmt.Errorf("ooo: contexts %d < 0", c.Contexts)
	}
	n := c.ContextCount()
	if need := n*rename.NumArch + 1; c.PhysRegs < need {
		return fmt.Errorf("ooo: %d contexts need at least %d physical registers, have %d",
			n, need, c.PhysRegs)
	}
	return nil
}

// Stats aggregates timing results for one run.
type Stats struct {
	Cycles uint64

	Fetched    uint64 // instructions fetched (incl. wrong path and kills)
	Dispatched uint64 // entered the window (excl. eliminated saves/restores)
	WrongPath  uint64 // wrong-path instructions dispatched
	Committed  uint64 // committed original instructions (excl. kills)
	KillsSeen  uint64 // kill instructions committed (overhead, not work)
	ElimSaves  uint64 // live-stores dropped at dispatch
	ElimRests  uint64 // live-loads dropped at dispatch

	Mispredicts uint64 // correct-path branch mispredictions recovered
	Recoveries  uint64

	RenameStallCycles uint64 // dispatch blocked by an empty free list
	WindowFullCycles  uint64 // dispatch blocked by a full window
	PortStallCycles   uint64 // commit blocked waiting for a cache port

	LoadsIssued    uint64
	StoresCommit   uint64
	LoadForwarded  uint64 // store-to-load forwarding hits
	WrongPathLoads uint64

	// Register file behaviour (§4).
	MaxPhysInUse   int    // high-water mark of allocated physical registers
	EarlyReclaimed uint64 // physical registers freed by DVI kills

	// Faults counts correct-path fetches outside the text segment (wild
	// jumps, misaligned targets). The machine halts as if the program
	// ended — the historical behaviour — but the count distinguishes
	// corrupted control flow from a clean exit.
	Faults uint64

	// Shared cache hierarchy behaviour, filled at the end of a run. In a
	// multi-context machine these aggregate over all contexts: the caches
	// are shared structures, so per-context attribution is not meaningful
	// (contexts' footprints are disjoint by address-space tagging but
	// compete for the same sets).
	L1I, L1D, L2 cache.Stats

	Emu emu.Stats // architectural counts from the embedded emulator
}

// addEmu accumulates architectural counts from one context's emulator
// into the aggregate (a single-context machine's aggregate is exactly its
// only emulator's counts).
func addEmu(dst *emu.Stats, s emu.Stats) {
	dst.Total += s.Total
	dst.Kills += s.Kills
	dst.Calls += s.Calls
	dst.Returns += s.Returns
	dst.CondBr += s.CondBr
	dst.TakenBr += s.TakenBr
	dst.Jumps += s.Jumps
	dst.MemRefs += s.MemRefs
	dst.Loads += s.Loads
	dst.Stores += s.Stores
	dst.LvmOps += s.LvmOps
	dst.ALUOps += s.ALUOps
	dst.MulDiv += s.MulDiv
	dst.SavesExec += s.SavesExec
	dst.SavesElim += s.SavesElim
	dst.RestoresExec += s.RestoresExec
	dst.RestoresElim += s.RestoresElim
	dst.Faults += s.Faults
}

// IPC returns committed original program instructions per cycle. Original
// instructions include executed and eliminated saves/restores but exclude
// E-DVI kill annotations (paper §3).
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}
