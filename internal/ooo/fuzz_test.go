package ooo

import (
	"fmt"
	"math/rand"
	"testing"

	"dvi/internal/core"
	"dvi/internal/emu"
	"dvi/internal/isa"
	"dvi/internal/prog"
	"dvi/internal/rewrite"
)

// The differential fuzzer: random — but terminating — programs with
// calls, frames, bounded loops, forward branches, memory traffic, kill
// annotations, and live-store/live-load pairs are run on the timing
// simulator and the functional emulator under identical DVI
// configurations. Architectural results (checksums and committed counts)
// must be identical on every seed and machine shape: the out-of-order
// engine, renaming, speculation recovery, and elimination decisions may
// change only *when* things happen, never *what* happens.

// genProc emits a random procedure body. Procedures call only
// higher-numbered procedures (a DAG, so every program terminates).
type fuzzGen struct {
	r      *rand.Rand
	nProcs int
}

// caller-saved scratch registers the generator computes with.
var fuzzTemps = []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5}

func (g *fuzzGen) reg() isa.Reg { return fuzzTemps[g.r.Intn(len(fuzzTemps))] }

// savedPool returns a random subset of callee-saved registers.
func (g *fuzzGen) savedPool() []isa.Reg {
	all := []isa.Reg{isa.S0, isa.S1, isa.S2, isa.S3, isa.S4}
	n := g.r.Intn(len(all) + 1)
	return all[:n]
}

func (g *fuzzGen) emitBody(a *prog.Asm, self int, saved []isa.Reg) {
	r := g.r
	nOps := 4 + r.Intn(24)
	label := 0
	calls := 0 // cap fan-out: the call DAG grows as calls^depth
	for i := 0; i < nOps; i++ {
		switch r.Intn(12) {
		case 0, 1, 2: // arithmetic on temps
			ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SLT}
			a.Inst(isa.Inst{Op: ops[r.Intn(len(ops))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
		case 3: // immediates
			a.Addi(g.reg(), g.reg(), int64(r.Intn(4096)-2048))
		case 4: // divide/remainder (long latency, possible by-zero)
			if r.Intn(2) == 0 {
				a.Div(g.reg(), g.reg(), g.reg())
			} else {
				a.Rem(g.reg(), g.reg(), g.reg())
			}
		case 5: // memory round trip through the scratch array
			off := int64(r.Intn(32)) * 8
			a.LoadAddr(isa.T6, "scratch")
			if r.Intn(2) == 0 {
				a.St(g.reg(), isa.T6, off)
			} else {
				a.Ld(g.reg(), isa.T6, off)
			}
		case 6: // bounded loop on a callee-saved counter when available
			if len(saved) > 0 {
				cnt := saved[r.Intn(len(saved))]
				lbl := fmt.Sprintf("l%d_%d", self, label)
				label++
				a.Li(cnt, int64(1+r.Intn(6)))
				a.Label(lbl)
				a.Inst(isa.Inst{Op: isa.ADD, Rd: g.reg(), Rs1: g.reg(), Rs2: cnt})
				a.Addi(cnt, cnt, -1)
				a.Bnez(cnt, lbl)
			}
		case 7: // forward branch over a couple of instructions
			lbl := fmt.Sprintf("f%d_%d", self, label)
			label++
			ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
			a.Inst(isa.Inst{Op: ops[r.Intn(len(ops))], Rs1: g.reg(), Rs2: g.reg()})
			p := a.Proc()
			p.Insts[len(p.Insts)-1].Kind = prog.TargetBranch
			p.Insts[len(p.Insts)-1].Target = lbl
			a.Addi(g.reg(), g.reg(), 1)
			a.Xor(g.reg(), g.reg(), g.reg())
			a.Label(lbl)
		case 8: // call deeper into the DAG
			if self+1 < g.nProcs && calls < 2 {
				calls++
				callee := self + 1 + g.r.Intn(g.nProcs-self-1)
				a.Move(isa.A0, g.reg())
				a.Call(fmt.Sprintf("p%d", callee))
				a.Move(g.reg(), isa.V0)
			}
		case 9: // explicit kill of random killable registers. Random kills
			// may assert falsehoods — fine for differential testing (both
			// simulators honour the same assertions) — except for s0,
			// main's loop counter: a false kill of s0 plus elimination
			// legally corrupts it and the program stops terminating.
			mask := isa.RegMask(r.Uint32()) & isa.Killable &^ isa.MaskOf(isa.S0)
			if mask != 0 {
				a.KillMask(mask)
			}
		case 10: // spill round trip (plain stores: live variants are
			// reserved for prologue/epilogue pairs, as in real compilers)
			if len(saved) > 0 {
				reg := saved[r.Intn(len(saved))]
				a.LoadAddr(isa.T6, "scratch")
				slot := int64(32+r.Intn(8)) * 8
				a.St(reg, isa.T6, slot)
				a.Addi(reg, reg, int64(r.Intn(8)))
				a.Ld(reg, isa.T6, slot)
			}
		case 11: // emit an output
			a.Sys(isa.Zero, g.reg())
		}
	}
	// Fold temps into the return value.
	a.Add(isa.V0, g.reg(), g.reg())
}

func buildFuzzProgram(seed int64) *prog.Program {
	r := rand.New(rand.NewSource(seed))
	g := &fuzzGen{r: r, nProcs: 3 + r.Intn(4)}
	pr := prog.New()
	pr.AddData(prog.DataSym{Name: "scratch", Size: 64 * 8})

	for i := 0; i < g.nProcs; i++ {
		a := pr.Assembler(fmt.Sprintf("p%d", i))
		saved := g.savedPool()
		hasCalls := i+1 < g.nProcs
		epi := a.Frame(0, hasCalls, saved...)
		for j, s := range saved {
			a.Li(s, int64(seed)%97+int64(j))
		}
		g.emitBody(a, i, saved)
		epi()
	}

	m := pr.Assembler("main")
	mepi := m.Frame(0, true, isa.S0)
	m.Li(isa.S0, int64(2+r.Intn(3)))
	m.Label("top")
	m.Li(isa.A0, 5)
	m.Call("p0")
	m.Sys(isa.Zero, isa.V0)
	m.Addi(isa.S0, isa.S0, -1)
	m.Bnez(isa.S0, "top")
	mepi()
	return pr
}

// fuzzConfigs are the machine shapes every seed is checked against.
func fuzzConfigs() []Config {
	shapes := []func(*Config){
		func(c *Config) {},                                      // default
		func(c *Config) { c.PhysRegs = 34 },                     // starved renaming
		func(c *Config) { c.PhysRegs = 40; c.CachePorts = 1 },   // bandwidth bound
		func(c *Config) { c.IssueWidth = 8; c.WindowSize = 32 }, // wide, small window
		func(c *Config) { c.WrongPathFetch = false },            // fetch-stall mode
		func(c *Config) { c.Emu.DVI = core.Config{Level: core.None}; c.Emu.Scheme = emu.ElimOff },
		func(c *Config) { c.Emu.Scheme = emu.ElimLVM },
	}
	var out []Config
	for _, f := range shapes {
		c := DefaultConfig()
		f(&c)
		out = append(out, c)
	}
	return out
}

func TestFuzzDifferentialOOOvsEmulator(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		pr := buildFuzzProgram(seed)
		img, err := pr.Link()
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		for ci, cfg := range fuzzConfigs() {
			ref := emu.New(pr, img, cfg.Emu)
			if err := ref.Run(3_000_000); err != nil {
				t.Fatalf("seed %d cfg %d: emulator: %v", seed, ci, err)
			}
			m := New(pr, img, cfg)
			stats, err := m.Run()
			if err != nil {
				t.Fatalf("seed %d cfg %d: ooo: %v", seed, ci, err)
			}
			if m.Emu().Checksum != ref.Checksum {
				t.Fatalf("seed %d cfg %d: checksum %#x != reference %#x",
					seed, ci, m.Emu().Checksum, ref.Checksum)
			}
			if stats.Committed != ref.Stats.Original() {
				t.Fatalf("seed %d cfg %d: committed %d != reference %d",
					seed, ci, stats.Committed, ref.Stats.Original())
			}
			if stats.ElimSaves != ref.Stats.SavesElim || stats.ElimRests != ref.Stats.RestoresElim {
				t.Fatalf("seed %d cfg %d: elimination counts diverge", seed, ci)
			}
		}
	}
}

// TestFuzzSchemesAgreeArchitecturally checks the §5 soundness property on
// random programs whose kills come from the (sound) binary rewriter: all
// three elimination schemes must produce identical outputs, with the
// dead-read checker armed.
func TestFuzzSchemesAgreeArchitecturally(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(100); seed < int64(100+seeds); seed++ {
		var sums []uint64
		for _, scheme := range []emu.Scheme{emu.ElimOff, emu.ElimLVM, emu.ElimLVMStack} {
			pr := buildFuzzProgramNoRawKills(seed)
			if _, err := rewrite.InsertKills(pr, rewrite.Options{}); err != nil {
				t.Fatalf("seed %d: rewrite: %v", seed, err)
			}
			img, err := pr.Link()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			// The dead-read checker stays off here: random programs
			// freely read caller-saved temporaries across calls (an ABI
			// violation the checker rightly flags on real compiled code,
			// exercised by the workload tests). Elimination decisions
			// concern callee-saved registers only, whose discipline the
			// generator does respect — so cross-scheme checksum equality
			// is the soundness assertion.
			e := emu.New(pr, img, emu.Config{
				DVI:    core.DefaultConfig(),
				Scheme: scheme,
			})
			if err := e.Run(3_000_000); err != nil {
				t.Fatalf("seed %d scheme %v: %v", seed, scheme, err)
			}
			sums = append(sums, e.Checksum)
		}
		if sums[0] != sums[1] || sums[1] != sums[2] {
			t.Fatalf("seed %d: schemes disagree: %x", seed, sums)
		}
	}
}

// buildFuzzProgramNoRawKills produces programs whose only DVI annotations
// come from the rewriter — raw random kills can assert falsehoods, which
// is fine for ooo-vs-emu equivalence (both honour the same assertions)
// but not for cross-scheme comparison.
func buildFuzzProgramNoRawKills(seed int64) *prog.Program {
	pr := buildFuzzProgram(seed)
	for _, p := range pr.Procs {
		insts := p.Insts[:0]
		for _, in := range p.Insts {
			if in.Op == isa.KILL {
				in = prog.Inst{Inst: isa.Inst{Op: isa.NOP}}
			}
			insts = append(insts, in)
		}
		p.Insts = insts
	}
	return pr
}
