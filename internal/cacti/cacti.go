// Package cacti provides the analytical register file timing model used by
// the paper's §4 evaluation. The paper derives register file cycle times
// from a modified CACTI [Jouppi/Wilton 94; Farkas 97] and states the
// governing trend directly: "Access time is quadratic in the number of read
// and write ports and linear in the number of registers" (§4).
//
// Figure 6 divides IPC by this access time, so only relative times across
// register file sizes matter; the constants below are calibrated to the
// mid-90s process generation the paper targets (access times around 1.5 ns
// for a 64-entry, 12-ported file) and, more importantly, to its slope: a
// 64→50 entry reduction buys a few percent of cycle time.
package cacti

// Model holds the coefficients of t(R, P) = Base + PerReg·R + PerPort²·P².
type Model struct {
	BaseNs    float64 // fixed decode/sense overhead
	PerRegNs  float64 // wordline/bitline growth per register
	PerPort2N float64 // port area term, applied to (readPorts+writePorts)²
}

// Default returns the calibrated model.
func Default() Model {
	return Model{BaseNs: 0.55, PerRegNs: 0.006, PerPort2N: 0.0042}
}

// AccessTimeNs returns the register file access time in nanoseconds for a
// file of regs registers with the given port counts.
func (m Model) AccessTimeNs(regs, readPorts, writePorts int) float64 {
	p := float64(readPorts + writePorts)
	return m.BaseNs + m.PerRegNs*float64(regs) + m.PerPort2N*p*p
}

// PortsFor returns the read and write port counts required by an
// issueWidth-wide machine (paper §4.2: "a 4 way issue machine requires 8
// read ports and 4 write ports").
func PortsFor(issueWidth int) (readPorts, writePorts int) {
	return 2 * issueWidth, issueWidth
}

// RelativePerformance converts an (IPC, register count) point into the
// paper's Figure 6 metric: IPC divided by access time, in arbitrary units
// (callers normalize to a baseline peak).
func (m Model) RelativePerformance(ipc float64, regs, issueWidth int) float64 {
	r, w := PortsFor(issueWidth)
	return ipc / m.AccessTimeNs(regs, r, w)
}
