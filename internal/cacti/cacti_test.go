package cacti

import (
	"testing"
	"testing/quick"
)

func TestMonotoneInRegisters(t *testing.T) {
	m := Default()
	f := func(a, b uint8) bool {
		ra, rb := int(a)+32, int(a)+32+int(b)
		return m.AccessTimeNs(rb, 8, 4) >= m.AccessTimeNs(ra, 8, 4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearInRegisters(t *testing.T) {
	m := Default()
	d1 := m.AccessTimeNs(50, 8, 4) - m.AccessTimeNs(40, 8, 4)
	d2 := m.AccessTimeNs(90, 8, 4) - m.AccessTimeNs(80, 8, 4)
	if d1 <= 0 || d2 <= 0 || d1 != d2 {
		t.Errorf("register term not linear: %f vs %f", d1, d2)
	}
}

func TestQuadraticInPorts(t *testing.T) {
	m := Model{BaseNs: 0, PerRegNs: 0, PerPort2N: 1}
	if m.AccessTimeNs(64, 8, 4) != 144 {
		t.Errorf("12 ports should contribute 144 units, got %f", m.AccessTimeNs(64, 8, 4))
	}
	// Doubling ports quadruples the port term.
	if m.AccessTimeNs(64, 16, 8) != 4*144 {
		t.Errorf("port term not quadratic")
	}
}

func TestPortsFor(t *testing.T) {
	r, w := PortsFor(4)
	if r != 8 || w != 4 {
		t.Errorf("4-wide ports = %d/%d, want 8/4 (paper §4.2)", r, w)
	}
	r, w = PortsFor(8)
	if r != 16 || w != 8 {
		t.Errorf("8-wide ports = %d/%d", r, w)
	}
}

func TestCalibrationRange(t *testing.T) {
	// The mid-90s design point: a 64-entry 12-port file in the vicinity of
	// 1.5 ns, and the 64->50 shrink worth a few percent.
	m := Default()
	t64 := m.AccessTimeNs(64, 8, 4)
	if t64 < 1.0 || t64 > 2.5 {
		t.Errorf("t(64,12p) = %f ns, outside plausible range", t64)
	}
	ratio := t64 / m.AccessTimeNs(50, 8, 4)
	if ratio < 1.02 || ratio > 1.12 {
		t.Errorf("t(64)/t(50) = %f, want a few percent", ratio)
	}
}

func TestRelativePerformanceFavorsSmallerFileAtEqualIPC(t *testing.T) {
	m := Default()
	if m.RelativePerformance(1.8, 50, 4) <= m.RelativePerformance(1.8, 64, 4) {
		t.Error("equal IPC on a smaller file must yield higher performance")
	}
}
