package faults_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvi/internal/faults"
)

func body(t *testing.T, hc *http.Client, url string) (string, int, error) {
	t.Helper()
	res, err := hc.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	return string(b), res.StatusCode, err
}

func TestInjectorDeterministic(t *testing.T) {
	// Two injectors with one seed draw the same schedule; a different
	// seed draws a different one. 64 draws at p=0.5 collide with
	// probability 2^-64.
	draw := func(seed int64) string {
		in := faults.New(faults.Plan{Seed: seed, Err5xx: 0.5})
		h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
			if rec.Code == http.StatusServiceUnavailable {
				sb.WriteByte('x')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	a, b, c := draw(42), draw(42), draw(43)
	if a != b {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatal("different seeds, same schedule")
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("degenerate schedule %s", a)
	}
}

func TestMiddlewareDropResetsConnection(t *testing.T) {
	in := faults.New(faults.Plan{Seed: 1, Drop: 1.0})
	ts := httptest.NewServer(in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran behind a drop fault")
	})))
	defer ts.Close()
	if _, _, err := body(t, ts.Client(), ts.URL); err == nil {
		t.Fatal("dropped request succeeded")
	}
	if in.Counters().Dropped != 1 {
		t.Fatalf("counters: %+v", in.Counters())
	}
}

func TestMiddlewareErr5xx(t *testing.T) {
	in := faults.New(faults.Plan{Seed: 1, Err5xx: 1.0})
	ts := httptest.NewServer(in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran behind a 5xx fault")
	})))
	defer ts.Close()
	b, code, err := body(t, ts.Client(), ts.URL)
	if err != nil || code != http.StatusServiceUnavailable {
		t.Fatalf("got (%d, %v)", code, err)
	}
	if !strings.Contains(b, "injected fault") {
		t.Fatalf("body %q", b)
	}
}

func TestMiddlewareKillMidStream(t *testing.T) {
	in := faults.New(faults.Plan{Seed: 1, KillMidStream: 1.0, KillAfter: 10})
	ts := httptest.NewServer(in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(strings.Repeat("z", 100)))
	})))
	defer ts.Close()
	b, _, err := body(t, ts.Client(), ts.URL)
	// The stream must cut after exactly KillAfter bytes with a transport
	// error — a truncated-but-clean EOF would let clients mistake a dead
	// backend for a complete response.
	if err == nil {
		t.Fatalf("stream ended cleanly with %d bytes", len(b))
	}
	if len(b) > 10 {
		t.Fatalf("%d bytes escaped past the kill point", len(b))
	}
	if in.Counters().Killed != 1 {
		t.Fatalf("counters: %+v", in.Counters())
	}
}

func TestMiddlewareHangHonorsClientTimeout(t *testing.T) {
	in := faults.New(faults.Plan{Seed: 1, Hang: 1.0})
	ts := httptest.NewServer(in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran behind a hang fault")
	})))
	defer ts.Close()
	hc := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, _, err := body(t, hc, ts.URL)
	if err == nil {
		t.Fatal("hung request succeeded")
	}
	var ne net_Error
	if errors.As(err, &ne) && !ne.Timeout() {
		t.Fatalf("want timeout, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang outlived the client deadline")
	}
}

// net_Error avoids importing net just for the interface assertion.
type net_Error interface {
	error
	Timeout() bool
}

func TestMiddlewareDelay(t *testing.T) {
	in := faults.New(faults.Plan{Seed: 1, DelayProb: 1.0, Delay: 50 * time.Millisecond})
	ts := httptest.NewServer(in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer ts.Close()
	start := time.Now()
	if _, code, err := body(t, ts.Client(), ts.URL); err != nil || code != http.StatusOK {
		t.Fatalf("got (%d, %v)", code, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("request finished in %v, before the injected delay", d)
	}
	if in.Counters().Delayed != 1 {
		t.Fatalf("counters: %+v", in.Counters())
	}
}
