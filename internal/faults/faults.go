// Package faults is a deterministic fault-injection layer for the dvid
// fleet's tests and chaos gates. An Injector draws from a seeded PRNG,
// so a given seed replays the same fault schedule; the HTTP middleware
// injects connection drops, delays, 5xx rejections, hangs, and
// mid-stream kills in front of any handler, and TamperWrite plugs into
// store.Options to corrupt artifacts on their way to disk so the
// quarantine path is exercised end to end.
//
// Nothing in this package is imported by production code paths; the
// gateway and store only ever see its effects (reset connections,
// corrupt bytes) through their public interfaces.
package faults

import (
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Plan sets per-request fault probabilities (each in [0, 1], applied
// independently in the order Hang, Drop, Err5xx, KillMidStream, Delay)
// and the parameters of each fault.
type Plan struct {
	Seed int64 // PRNG seed; identical seeds replay identical schedules

	Hang          float64       // hold the request open until the client gives up
	Drop          float64       // reset the connection before any response
	Err5xx        float64       // answer 503 without invoking the handler
	KillMidStream float64       // serve the handler, cut the stream after KillAfter bytes
	KillAfter     int           // bytes to let through before the cut (default 16)
	DelayProb     float64       // probability of sleeping Delay before serving
	Delay         time.Duration // added latency when DelayProb fires

	Corrupt float64 // probability TamperWrite flips payload bytes
}

// Counters report how many of each fault actually fired.
type Counters struct {
	Hung, Dropped, Errored, Killed, Delayed, Corrupted int64
}

// Injector draws faults from a seeded PRNG. Safe for concurrent use;
// note that under concurrency the schedule is deterministic in
// aggregate (the draw sequence is fixed) but its assignment to
// requests depends on arrival order.
type Injector struct {
	mu   sync.Mutex
	rnd  *rand.Rand
	plan Plan

	hung, dropped, errored, killed, delayed, corrupted atomic.Int64
}

// New builds an Injector for plan.
func New(plan Plan) *Injector {
	if plan.KillAfter <= 0 {
		plan.KillAfter = 16
	}
	return &Injector{rnd: rand.New(rand.NewSource(plan.Seed)), plan: plan}
}

// roll draws one uniform variate under the lock.
func (in *Injector) roll() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rnd.Float64()
}

// Counters snapshots the fired-fault counts.
func (in *Injector) Counters() Counters {
	return Counters{
		Hung:      in.hung.Load(),
		Dropped:   in.dropped.Load(),
		Errored:   in.errored.Load(),
		Killed:    in.killed.Load(),
		Delayed:   in.delayed.Load(),
		Corrupted: in.corrupted.Load(),
	}
}

// Middleware wraps next with the injector's fault schedule.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in.plan.Hang > 0 && in.roll() < in.plan.Hang {
			in.hung.Add(1)
			// Drain the body first: the HTTP server only watches for
			// client disconnects once the request body is consumed, and
			// a hang that never observes the abandoning client would
			// wedge server shutdown instead of simulating a stuck peer.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
		if in.plan.Drop > 0 && in.roll() < in.plan.Drop {
			in.dropped.Add(1)
			panic(http.ErrAbortHandler)
		}
		if in.plan.Err5xx > 0 && in.roll() < in.plan.Err5xx {
			in.errored.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"injected fault"}` + "\n"))
			return
		}
		if in.plan.KillMidStream > 0 && in.roll() < in.plan.KillMidStream {
			in.killed.Add(1)
			kw := &killWriter{ResponseWriter: w, remaining: in.plan.KillAfter}
			next.ServeHTTP(kw, r)
			if kw.tripped {
				panic(http.ErrAbortHandler)
			}
			return
		}
		if in.plan.DelayProb > 0 && in.roll() < in.plan.DelayProb {
			in.delayed.Add(1)
			select {
			case <-time.After(in.plan.Delay):
			case <-r.Context().Done():
			}
		}
		next.ServeHTTP(w, r)
	})
}

// killWriter forwards writes until its byte allowance runs out, then
// swallows the rest and marks itself tripped so the middleware can
// reset the connection — the client sees a stream cut mid-line.
type killWriter struct {
	http.ResponseWriter
	remaining int
	tripped   bool
}

func (kw *killWriter) Write(p []byte) (int, error) {
	if kw.tripped {
		return len(p), nil
	}
	if len(p) > kw.remaining {
		kw.ResponseWriter.Write(p[:kw.remaining])
		if f, ok := kw.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		kw.remaining = 0
		kw.tripped = true
		return len(p), nil
	}
	n, err := kw.ResponseWriter.Write(p)
	kw.remaining -= n
	return n, err
}

func (kw *killWriter) Flush() {
	if kw.tripped {
		return
	}
	if f, ok := kw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TamperWrite is a store.Options.TamperWrite hook: with probability
// Corrupt it flips the low bit of the last payload byte, turning a
// good artifact into one the store's checksum must catch and
// quarantine. The header (first line) is left intact so the corruption
// is detected by the hash, not by a parse error.
func (in *Injector) TamperWrite(kind, key string, data []byte) []byte {
	if in.plan.Corrupt <= 0 || in.roll() >= in.plan.Corrupt {
		return data
	}
	in.corrupted.Add(1)
	out := append([]byte(nil), data...)
	if len(out) > 0 {
		out[len(out)-1] ^= 0x01
	}
	return out
}
