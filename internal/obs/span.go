package obs

import (
	"context"
	"sync"
	"time"
)

// The orchestration plane: jobs and requests are wrapped in Spans that
// form trees (queue-wait → build → scan → intervals → render), delivered
// on completion to a ring-buffered Recorder. Propagation is by context:
// code holding a context just calls StartSpan; when no Recorder was
// installed upstream, StartSpan returns a nil *Span whose methods are
// no-ops, so instrumented paths cost two context lookups and nothing
// else when tracing is off.

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed operation. Spans are created by StartSpan, annotated
// with SetAttr, and closed with End; all methods are safe on a nil
// receiver and safe for concurrent use (children are attached from
// worker goroutines).
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
	rec      *Recorder // non-nil on roots only; End delivers the tree
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span. Ending a root span delivers the completed tree to
// its Recorder. No-op on nil; a second End is ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	rec := s.rec
	s.mu.Unlock()
	if rec != nil {
		rec.record(s)
	}
}

// Duration returns the span's elapsed time (to now if still open; 0 on
// nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

type ctxKey int

const (
	recorderKey ctxKey = iota
	spanKey
)

// WithRecorder installs a Recorder so spans started under ctx are
// collected.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom returns the Recorder installed on ctx, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

// SpanFrom returns the current span on ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan starts a span as a child of the current span on ctx, or as a
// new root if none. When ctx carries neither a span nor a Recorder,
// tracing is off: StartSpan returns (ctx, nil) without allocating, and
// every method on the nil span is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	var rec *Recorder
	if parent == nil {
		if rec = RecorderFrom(ctx); rec == nil {
			return ctx, nil
		}
	}
	s := &Span{name: name, start: time.Now(), rec: rec}
	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SpanSnapshot is the JSON form of a completed span tree, served by
// /debug/trace/recent.
type SpanSnapshot struct {
	Name       string          `json:"name"`
	Start      time.Time       `json:"start"`
	DurationMS float64         `json:"duration_ms"`
	Attrs      map[string]any  `json:"attrs,omitempty"`
	Children   []*SpanSnapshot `json:"children,omitempty"`
}

// Snapshot deep-copies the span tree into its JSON form. Open spans
// report their duration so far.
func (s *Span) Snapshot() *SpanSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	snap := &SpanSnapshot{
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(s.durationLocked()) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			snap.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// durationLocked is Duration without locking; callers must hold s.mu.
func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Visit walks the completed span tree depth-first, calling fn on every
// span (the receiver first). Used to fold span trees into metrics.
func (s *Span) Visit(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	s.mu.Lock()
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		c.Visit(fn)
	}
}

// Recorder keeps the last N completed root span trees in a ring.
type Recorder struct {
	// OnRecord, when set before the Recorder is used, is called with each
	// completed root span tree (after it is stored). dvid uses it to fold
	// per-phase durations into Prometheus histograms.
	OnRecord func(*Span)

	mu   sync.Mutex
	ring []*Span
	next int
	n    int
}

// NewRecorder returns a Recorder retaining the last n root spans
// (n <= 0 defaults to 64).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 64
	}
	return &Recorder{ring: make([]*Span, n)}
}

func (r *Recorder) record(s *Span) {
	r.mu.Lock()
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
	if r.OnRecord != nil {
		r.OnRecord(s)
	}
}

// Recent snapshots the retained span trees, newest first.
func (r *Recorder) Recent() []*SpanSnapshot {
	r.mu.Lock()
	roots := make([]*Span, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		roots = append(roots, r.ring[idx])
	}
	r.mu.Unlock()
	out := make([]*SpanSnapshot, len(roots))
	for i, s := range roots {
		out[i] = s.Snapshot()
	}
	return out
}
