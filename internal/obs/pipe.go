// Package obs is the instrumentation layer: a zero-overhead-when-off
// tracing subsystem with two planes.
//
// The microarchitectural plane records per-instruction pipeline
// lifecycles from the ooo core (PipeRecord / PipeSink / PipeBuffer) and
// renders them for standard viewers: the Konata pipeline viewer
// (WriteKonata) and Chrome's about:tracing / Perfetto trace_event JSON
// (WriteChromeTrace).
//
// The orchestration plane wraps jobs in timed spans (Span / StartSpan)
// collected by a ring-buffered in-process Recorder, the backing store for
// dvid's /debug/trace/recent endpoint and its per-phase latency metrics.
//
// Both planes share one discipline: when tracing is off — a nil PipeSink,
// a context without a Recorder — the hot path does no allocation and no
// locking, so the simulator's 0 allocs/op steady-state gates and report
// byte-identity are preserved.
package obs

import "dvi/internal/isa"

// PipeKind classifies a pipeline trace record.
type PipeKind uint8

const (
	// KindInst is an instruction that occupied a window slot.
	KindInst PipeKind = iota
	// KindElimSave is a save (LVST) eliminated at dispatch by dead-value
	// information: it consumed fetch/decode bandwidth but no window slot,
	// functional unit or commit slot.
	KindElimSave
	// KindElimRestore is a restore (LVLD) eliminated at dispatch.
	KindElimRestore
	// KindKill is an E-DVI kill annotation: decode bandwidth only.
	KindKill
)

// String names the kind for renderers and JSON.
func (k PipeKind) String() string {
	switch k {
	case KindElimSave:
		return "elim-save"
	case KindElimRestore:
		return "elim-restore"
	case KindKill:
		return "kill"
	default:
		return "inst"
	}
}

// SquashCause says why an instruction left the pipeline without
// committing.
type SquashCause uint8

const (
	// SquashNone: the instruction committed (or, for eliminated
	// saves/restores and kills, completed at decode).
	SquashNone SquashCause = iota
	// SquashRecovery: squashed from the window by misprediction recovery.
	SquashRecovery
	// SquashFetch: flushed from the fetch queue before dispatch by a
	// fetch redirect.
	SquashFetch
	// SquashWrongPath: a wrong-path kill annotation, discarded at decode.
	SquashWrongPath
	// SquashDrain: still in flight when the run ended (instruction-budget
	// cutoff); drained, not architecturally committed.
	SquashDrain
)

// String names the cause for renderers and JSON.
func (c SquashCause) String() string {
	switch c {
	case SquashRecovery:
		return "recovery"
	case SquashFetch:
		return "fetch-flush"
	case SquashWrongPath:
		return "wrong-path"
	case SquashDrain:
		return "drain"
	default:
		return ""
	}
}

// PipeRecord is one instruction's pipeline lifetime. Cycle stamps are
// 1-based (the machine's first cycle is 1); a zero stamp means the
// instruction never reached that stage. Retire is the cycle the
// instruction left the machine — by commit when Squash is SquashNone,
// otherwise by squash, flush or drain.
//
// Records are emitted in retirement order (the order instructions leave
// the machine), not fetch order; renderers re-sort as needed.
type PipeRecord struct {
	ID   uint64   // fetch sequence number, unique within a run
	PC   uint64   // fetch program counter
	Inst isa.Inst // the instruction (flat value; String() disassembles)
	Ctx  uint8    // hardware context that fetched it (0 on a single-context machine)

	Fetch    uint64 // entered the fetch queue
	Dispatch uint64 // renamed into the window (0: eliminated/killed/flushed)
	Issue    uint64 // left for a functional unit (0: e.g. NOPs, stores done at dispatch)
	Complete uint64 // result written back
	Retire   uint64 // left the machine (commit or squash; see Squash)

	Kind      PipeKind
	Squash    SquashCause
	WrongPath bool  // fetched beyond an unresolved mispredicted branch
	Victims   uint8 // physical registers freed early by this kill (KindKill)
}

// PipeSink receives pipeline records from a machine. The pointer is
// reused by the emitter across calls: implementations must copy the
// record, not retain it.
//
// Sinks are driven by a single machine goroutine and need no internal
// locking. A nil PipeSink disables the plane entirely: the core's only
// per-instruction overhead is a handful of integer stamps.
type PipeSink interface {
	Emit(*PipeRecord)
}

// PipeBuffer is the standard PipeSink: an in-memory bounded buffer.
// Records past the cap are counted as dropped rather than appended, so a
// runaway trace request cannot exhaust memory. Not safe for concurrent
// use (machines are single-threaded).
type PipeBuffer struct {
	recs    []PipeRecord
	max     int
	dropped uint64
}

// NewPipeBuffer returns a buffer holding at most max records (max <= 0
// means unbounded).
func NewPipeBuffer(max int) *PipeBuffer {
	return &PipeBuffer{max: max}
}

// Emit copies the record into the buffer, or counts it as dropped once
// the cap is reached. Appending within previously grown capacity does
// not allocate, so a warm buffer sustains the machine's zero-alloc
// steady state.
func (b *PipeBuffer) Emit(r *PipeRecord) {
	if b.max > 0 && len(b.recs) >= b.max {
		b.dropped++
		return
	}
	b.recs = append(b.recs, *r)
}

// Records returns the buffered records (the live slice, not a copy).
func (b *PipeBuffer) Records() []PipeRecord { return b.recs }

// Dropped reports how many records were discarded at the cap.
func (b *PipeBuffer) Dropped() uint64 { return b.dropped }

// Len reports the number of buffered records.
func (b *PipeBuffer) Len() int { return len(b.recs) }

// Reset empties the buffer, keeping its storage, so a pooled buffer can
// be reused run after run without allocating.
func (b *PipeBuffer) Reset() {
	b.recs = b.recs[:0]
	b.dropped = 0
}
