package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dvi/internal/isa"
)

// syntheticRecords is a small hand-built pipeline: two committed
// instructions, one squashed wrong-path instruction (on hardware context
// 1 — the multi-context lane case), and one decode-stage elimination (no
// window stages).
func syntheticRecords() []PipeRecord {
	add := isa.Inst{Op: isa.ADD, Rd: isa.T0, Rs1: isa.T1, Rs2: isa.T2}
	return []PipeRecord{
		{ID: 0, PC: 0x100, Inst: add, Fetch: 1, Dispatch: 2, Issue: 3, Complete: 4, Retire: 5, Kind: KindInst},
		{ID: 1, PC: 0x104, Inst: add, Fetch: 1, Dispatch: 2, Issue: 4, Complete: 5, Retire: 6, Kind: KindInst},
		{ID: 2, PC: 0x200, Inst: add, Ctx: 1, Fetch: 3, Dispatch: 4, Retire: 6, Kind: KindInst, Squash: SquashRecovery, WrongPath: true},
		{ID: 3, PC: 0x108, Inst: add, Fetch: 4, Retire: 5, Kind: KindElimSave},
	}
}

func TestPipeBufferBounds(t *testing.T) {
	b := NewPipeBuffer(2)
	for i := 0; i < 5; i++ {
		rec := PipeRecord{ID: uint64(i)}
		b.Emit(&rec)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if b.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", b.Dropped())
	}
	// Emit passes a reused pointer; the buffer must have copied.
	if b.Records()[0].ID != 0 || b.Records()[1].ID != 1 {
		t.Fatalf("records not copied: %+v", b.Records())
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", b.Len(), b.Dropped())
	}
}

func TestWriteKonataShape(t *testing.T) {
	var sb strings.Builder
	if err := WriteKonata(&sb, syntheticRecords()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if lines[0] != "Kanata\t0004" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "C=\t1" {
		t.Fatalf("first cycle = %q, want C=\\t1", lines[1])
	}
	// Every instruction retires exactly once; the squashed one with
	// type 1.
	var retires, flushes int
	for _, ln := range lines {
		if strings.HasPrefix(ln, "R\t") {
			retires++
			if strings.HasSuffix(ln, "\t1") {
				flushes++
			}
		}
	}
	if retires != 4 {
		t.Errorf("retire commands = %d, want 4", retires)
	}
	if flushes != 1 {
		t.Errorf("flush retires = %d, want 1", flushes)
	}
	// Cycle advancement is monotonic: C deltas are positive by
	// construction; the absolute timeline must cover fetch 1 .. retire 6.
	total := uint64(1)
	for _, ln := range lines {
		if strings.HasPrefix(ln, "C\t") {
			var d uint64
			if _, err := fmtSscan(ln[2:], &d); err != nil || d == 0 {
				t.Fatalf("bad cycle delta line %q", ln)
			}
			total += d
		}
	}
	if total != 6 {
		t.Errorf("timeline ends at cycle %d, want 6", total)
	}
}

// TestWriteKonataContextLanes pins the per-context lane labelling: the I
// command's thread field is the record's hardware context, and the L
// detail line names it.
func TestWriteKonataContextLanes(t *testing.T) {
	var sb strings.Builder
	if err := WriteKonata(&sb, syntheticRecords()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var tids []string
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "I\t") {
			f := strings.Split(ln, "\t")
			tids = append(tids, f[3])
		}
	}
	// Records sort by fetch cycle: ids 0,1 (ctx 0), then 2 (ctx 1), then
	// 3 (ctx 0).
	want := []string{"0", "0", "1", "0"}
	if len(tids) != len(want) {
		t.Fatalf("I commands = %d, want %d", len(tids), len(want))
	}
	for i := range want {
		if tids[i] != want[i] {
			t.Errorf("I command %d: thread id %s, want %s", i, tids[i], want[i])
		}
	}
	if !strings.Contains(out, "ctx=1 kind=inst") {
		t.Error("detail label does not name the record's context")
	}
}

// fmtSscan parses one uint64 (avoids importing fmt just for tests'
// delta check readability).
func fmtSscan(s string, d *uint64) (int, error) {
	var v uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + uint64(c-'0')
	}
	*d = v
	return 1, nil
}

func TestChromeTraceEvents(t *testing.T) {
	evs := ChromeTraceEvents(syntheticRecords())
	// rec0: fetch+dispatch+execute+complete; rec1: same (4); rec2:
	// fetch+dispatch (2); rec3: fetch only (1).
	if len(evs) != 11 {
		t.Fatalf("events = %d, want 11", len(evs))
	}
	for _, ev := range evs {
		if ev.Ph != "X" {
			t.Errorf("ph = %q, want X", ev.Ph)
		}
		if ev.Dur == 0 {
			t.Errorf("%s: zero duration", ev.Name)
		}
		if ev.TID < 0 || ev.TID >= chromeLanes {
			t.Errorf("%s: tid %d out of range", ev.Name, ev.TID)
		}
	}
	// The squashed record's fetch event carries the cause, and its events
	// land in its context's process group; everything else is ctx 0.
	found := false
	for _, ev := range evs {
		if ev.Args != nil && ev.Args["squash"] == "recovery" {
			found = true
			if ev.PID != 1 {
				t.Errorf("ctx-1 record rendered in pid %d, want 1", ev.PID)
			}
			if ev.Args["ctx"] != uint8(1) {
				t.Errorf("ctx arg = %v, want 1", ev.Args["ctx"])
			}
		}
	}
	if !found {
		t.Error("no event carries squash=recovery")
	}
	for _, ev := range evs {
		if ev.Name == "execute" && ev.PID != 0 {
			t.Errorf("ctx-0 record rendered in pid %d", ev.PID)
		}
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, syntheticRecords()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid trace_event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
}

func TestSpanNilSafety(t *testing.T) {
	// No Recorder in context: StartSpan must return a nil span whose
	// methods are all no-ops, and must not allocate.
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "noop")
	if span != nil {
		t.Fatal("expected nil span without a recorder")
	}
	if ctx2 != ctx {
		t.Fatal("context must pass through unchanged without a recorder")
	}
	span.SetAttr("k", 1) // must not panic
	span.End()
	if span.Duration() != 0 {
		t.Fatal("nil span duration")
	}
	allocs := testing.AllocsPerRun(10, func() {
		_, s := StartSpan(ctx, "noop")
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan allocated %.1f objects", allocs)
	}
}

func TestSpanTreeAndRecorder(t *testing.T) {
	rec := NewRecorder(2)
	var recorded []*Span
	rec.OnRecord = func(s *Span) { recorded = append(recorded, s) }

	ctx := WithRecorder(context.Background(), rec)
	ctx, root := StartSpan(ctx, "root")
	if root == nil {
		t.Fatal("expected a live root span with a recorder installed")
	}
	root.SetAttr("request_id", "r1")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	time.Sleep(time.Millisecond)
	root.End()

	if len(recorded) != 1 || recorded[0] != root {
		t.Fatalf("OnRecord saw %d spans", len(recorded))
	}
	snaps := rec.Recent()
	if len(snaps) != 1 {
		t.Fatalf("Recent = %d trees", len(snaps))
	}
	s := snaps[0]
	if s.Name != "root" || len(s.Children) != 1 || s.Children[0].Name != "child" {
		t.Fatalf("bad tree: %+v", s)
	}
	if s.Children[0].Children[0].Name != "grandchild" {
		t.Fatalf("missing grandchild: %+v", s.Children[0])
	}
	if s.DurationMS <= 0 {
		t.Errorf("root duration = %v", s.DurationMS)
	}
	if s.Attrs["request_id"] != "r1" {
		t.Errorf("attrs = %v", s.Attrs)
	}

	// Visit walks depth-first: root, child, grandchild.
	var names []string
	root.Visit(func(sp *Span) { names = append(names, sp.Name()) })
	want := []string{"root", "child", "grandchild"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Visit order = %v, want %v", names, want)
		}
	}

	// Ring bound: a third root evicts the first.
	for i := 0; i < 2; i++ {
		_, r2 := StartSpan(WithRecorder(context.Background(), rec), "later")
		r2.End()
	}
	snaps = rec.Recent()
	if len(snaps) != 2 {
		t.Fatalf("ring retained %d, want 2", len(snaps))
	}
	if snaps[0].Name != "later" || snaps[1].Name != "later" {
		t.Fatalf("ring should hold the newest trees: %v, %v", snaps[0].Name, snaps[1].Name)
	}
	// End after root delivery is idempotent — no double record.
	root.End()
	if len(recorded) != 3 {
		t.Fatalf("re-End recorded again: %d", len(recorded))
	}
}
