package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteKonata renders pipeline records in the Kanata log format
// understood by the Konata pipeline viewer (and Onikiri2's Kanata): a
// `Kanata\t0004` header followed by cycle-ordered commands — I (insert),
// L (label), S (stage start), R (retire). Stages are F (fetch), D
// (dispatch / window wait), X (execute) and Cm (complete → retire); a
// new S in lane 0 ends the previous stage, and R type 1 marks squashed
// instructions so flushes render distinctly from commits.
//
// Records may arrive in any order; the writer sorts by fetch cycle (then
// ID) and interleaves per-record stage events into one global timeline.
func WriteKonata(w io.Writer, recs []PipeRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "Kanata\t0004\n"); err != nil {
		return err
	}
	if len(recs) == 0 {
		return bw.Flush()
	}

	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := &recs[order[a]], &recs[order[b]]
		if ra.Fetch != rb.Fetch {
			return ra.Fetch < rb.Fetch
		}
		return ra.ID < rb.ID
	})

	// One event per stage transition, merged into a single timeline.
	// seq breaks cycle ties: all events of an older instruction precede a
	// younger one's, and within an instruction stages are generated in
	// pipeline order.
	type event struct {
		cycle uint64
		seq   int
		emit  func() error
	}
	evs := make([]event, 0, len(recs)*4)
	seq := 0
	add := func(cycle uint64, emit func() error) {
		evs = append(evs, event{cycle: cycle, seq: seq, emit: emit})
		seq++
	}
	for n, idx := range order {
		r := &recs[idx]
		id := n // Konata ids must be dense and appear in order
		add(r.Fetch, func() error {
			// The third I field is Konata's thread ID: one lane group per
			// hardware context, so SMT pipelines render side by side.
			if _, err := fmt.Fprintf(bw, "I\t%d\t%d\t%d\n", id, id, r.Ctx); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw, "L\t%d\t0\t%#x: %s\n", id, r.PC, r.Inst.String()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(bw, "L\t%d\t1\tctx=%d kind=%s squash=%q wrong_path=%v seq=%d\n",
				id, r.Ctx, r.Kind, r.Squash.String(), r.WrongPath, r.ID); err != nil {
				return err
			}
			_, err := fmt.Fprintf(bw, "S\t%d\t0\tF\n", id)
			return err
		})
		if r.Dispatch != 0 {
			add(r.Dispatch, func() error {
				_, err := fmt.Fprintf(bw, "S\t%d\t0\tD\n", id)
				return err
			})
		}
		if r.Issue != 0 {
			add(r.Issue, func() error {
				_, err := fmt.Fprintf(bw, "S\t%d\t0\tX\n", id)
				return err
			})
		}
		if r.Complete != 0 && r.Complete != r.Retire {
			add(r.Complete, func() error {
				_, err := fmt.Fprintf(bw, "S\t%d\t0\tCm\n", id)
				return err
			})
		}
		retireType := 0
		if r.Squash != SquashNone {
			retireType = 1
		}
		add(r.Retire, func() error {
			_, err := fmt.Fprintf(bw, "R\t%d\t%d\t%d\n", id, id, retireType)
			return err
		})
	}

	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].cycle != evs[b].cycle {
			return evs[a].cycle < evs[b].cycle
		}
		return evs[a].seq < evs[b].seq
	})

	cur := evs[0].cycle
	if _, err := fmt.Fprintf(bw, "C=\t%d\n", cur); err != nil {
		return err
	}
	for i := range evs {
		if d := evs[i].cycle - cur; d > 0 {
			if _, err := fmt.Fprintf(bw, "C\t%d\n", d); err != nil {
				return err
			}
			cur = evs[i].cycle
		}
		if err := evs[i].emit(); err != nil {
			return err
		}
	}
	return bw.Flush()
}
