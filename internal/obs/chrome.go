package obs

import (
	"encoding/json"
	"io"
)

// ChromeEvent is one complete ("ph":"X") event in Chrome's trace_event
// JSON format, the schema consumed by chrome://tracing, Perfetto and
// speedscope. Timestamps are in "microseconds"; the pipeline renderer
// maps one simulated cycle to one microsecond.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeLanes is the number of display rows pipeline records are spread
// over (trace viewers stack events with the same tid, so a fixed lane
// count keeps overlapping instructions visible side by side).
const chromeLanes = 16

// ChromeTraceEvents converts pipeline records to trace_event complete
// events: one event per occupied stage (fetch, dispatch, execute,
// complete), with the instruction's identity attached to its fetch
// stage. Squashed instructions carry a squash arg naming the cause. The
// process ID is the hardware context, so multi-context pipelines group
// into one labelled lane block per context in the viewer.
func ChromeTraceEvents(recs []PipeRecord) []ChromeEvent {
	evs := make([]ChromeEvent, 0, len(recs)*2)
	for i := range recs {
		r := &recs[i]
		tid := int(r.ID % chromeLanes)
		end := r.Retire
		args := map[string]any{
			"pc":   r.PC,
			"inst": r.Inst.String(),
			"kind": r.Kind.String(),
			"seq":  r.ID,
			"ctx":  r.Ctx,
		}
		if r.Squash != SquashNone {
			args["squash"] = r.Squash.String()
		}
		if r.WrongPath {
			args["wrong_path"] = true
		}
		stage := func(name string, from, to uint64, a map[string]any) {
			if from == 0 {
				return
			}
			dur := uint64(1)
			if to > from {
				dur = to - from
			}
			evs = append(evs, ChromeEvent{
				Name: name, Cat: "pipeline", Ph: "X",
				TS: from, Dur: dur, PID: int(r.Ctx), TID: tid, Args: a,
			})
		}
		next := func(candidates ...uint64) uint64 {
			for _, c := range candidates {
				if c != 0 {
					return c
				}
			}
			return end
		}
		stage("fetch "+r.Inst.String(), r.Fetch, next(r.Dispatch, r.Issue, r.Complete), args)
		stage("dispatch", r.Dispatch, next(r.Issue, r.Complete), nil)
		stage("execute", r.Issue, next(r.Complete), nil)
		stage("complete", r.Complete, end, nil)
	}
	return evs
}

// chromeTrace is the top-level trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders records as a complete trace_event JSON
// document ({"traceEvents": [...]}).
func WriteChromeTrace(w io.Writer, recs []PipeRecord) error {
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     ChromeTraceEvents(recs),
		DisplayTimeUnit: "ms",
	})
}
